//! Inception-v4 (Szegedy et al., 2016) — the paper's `IN` benchmark.
//!
//! 299×299 input, the stem with its two internal concats, 4 Inception-A,
//! Reduction-A, 7 Inception-B, Reduction-B, 3 Inception-C. The 14
//! inception blocks (A1–A4, B1–B7, C1–C3) are labelled so the Fig. 2(b)
//! design-space sweep can treat each block's residency as one decision.

use crate::{ConvParams, FeatureShape, Graph, GraphBuilder, GraphError, NodeId};

/// Valid (no-padding) square conv.
fn valid(out: usize, k: usize, s: usize) -> ConvParams {
    ConvParams::square(out, k, s, 0)
}

/// Same-padded square conv, stride 1.
fn same(out: usize, k: usize) -> ConvParams {
    ConvParams::square(out, k, 1, (k - 1) / 2)
}

fn stem(b: &mut GraphBuilder, x: NodeId) -> Result<NodeId, GraphError> {
    b.set_block("stem");
    // 299 -> 149 -> 147 -> 147
    let c1 = b.conv("stem/conv1_3x3_s2_v", x, valid(32, 3, 2))?;
    let c2 = b.conv("stem/conv2_3x3_v", c1, valid(32, 3, 1))?;
    let c3 = b.conv("stem/conv3_3x3", c2, same(64, 3))?;
    // First fork: maxpool vs stride-2 conv, both to 73x73, concat to 160ch.
    let p1 = b.max_pool("stem/pool1_3x3_s2_v", c3, 3, 2, 0)?;
    let c4 = b.conv("stem/conv4_3x3_s2_v", c3, valid(96, 3, 2))?;
    let cat1 = b.concat("stem/concat1", &[p1, c4])?;
    // Second fork: two conv towers, both ending 3x3 valid to 71x71, 96ch each.
    let a1 = b.conv("stem/a_1x1", cat1, ConvParams::pointwise(64))?;
    let a2 = b.conv("stem/a_3x3_v", a1, valid(96, 3, 1))?;
    let b1 = b.conv("stem/b_1x1", cat1, ConvParams::pointwise(64))?;
    let b2 = b.conv("stem/b_7x1", b1, ConvParams::rect(64, 7, 1))?;
    let b3 = b.conv("stem/b_1x7", b2, ConvParams::rect(64, 1, 7))?;
    let b4 = b.conv("stem/b_3x3_v", b3, valid(96, 3, 1))?;
    let cat2 = b.concat("stem/concat2", &[a2, b4])?;
    // Third fork: stride-2 conv vs maxpool, to 35x35, concat to 384ch.
    let c5 = b.conv("stem/conv5_3x3_s2_v", cat2, valid(192, 3, 2))?;
    let p2 = b.max_pool("stem/pool2_3x3_s2_v", cat2, 3, 2, 0)?;
    b.concat("stem/concat3", &[c5, p2])
}

/// Inception-A: 384×35×35 in and out.
fn inception_a(b: &mut GraphBuilder, from: NodeId, name: &str) -> Result<NodeId, GraphError> {
    b.set_block(name);
    let bp = b.avg_pool(format!("{name}/pool"), from, 3, 1, 1)?;
    let b1 = b.conv(format!("{name}/pool_proj"), bp, ConvParams::pointwise(96))?;
    let b2 = b.conv(format!("{name}/1x1"), from, ConvParams::pointwise(96))?;
    let b3a = b.conv(
        format!("{name}/3x3_reduce"),
        from,
        ConvParams::pointwise(64),
    )?;
    let b3 = b.conv(format!("{name}/3x3"), b3a, same(96, 3))?;
    let b4a = b.conv(
        format!("{name}/d3x3_reduce"),
        from,
        ConvParams::pointwise(64),
    )?;
    let b4b = b.conv(format!("{name}/d3x3_1"), b4a, same(96, 3))?;
    let b4 = b.conv(format!("{name}/d3x3_2"), b4b, same(96, 3))?;
    b.concat(format!("{name}/output"), &[b1, b2, b3, b4])
}

/// Reduction-A: 384×35×35 -> 1024×17×17.
fn reduction_a(b: &mut GraphBuilder, from: NodeId) -> Result<NodeId, GraphError> {
    b.set_block("reduction_a");
    let p = b.max_pool("reduction_a/pool", from, 3, 2, 0)?;
    let c1 = b.conv("reduction_a/3x3_s2_v", from, valid(384, 3, 2))?;
    let t1 = b.conv("reduction_a/t_1x1", from, ConvParams::pointwise(192))?;
    let t2 = b.conv("reduction_a/t_3x3", t1, same(224, 3))?;
    let t3 = b.conv("reduction_a/t_3x3_s2_v", t2, valid(256, 3, 2))?;
    b.concat("reduction_a/output", &[p, c1, t3])
}

/// Inception-B: 1024×17×17 in and out.
fn inception_b(b: &mut GraphBuilder, from: NodeId, name: &str) -> Result<NodeId, GraphError> {
    b.set_block(name);
    let bp = b.avg_pool(format!("{name}/pool"), from, 3, 1, 1)?;
    let b1 = b.conv(format!("{name}/pool_proj"), bp, ConvParams::pointwise(128))?;
    let b2 = b.conv(format!("{name}/1x1"), from, ConvParams::pointwise(384))?;
    let b3a = b.conv(
        format!("{name}/7x7_reduce"),
        from,
        ConvParams::pointwise(192),
    )?;
    let b3b = b.conv(format!("{name}/1x7"), b3a, ConvParams::rect(224, 1, 7))?;
    let b3 = b.conv(format!("{name}/7x1"), b3b, ConvParams::rect(256, 7, 1))?;
    let b4a = b.conv(
        format!("{name}/d7x7_reduce"),
        from,
        ConvParams::pointwise(192),
    )?;
    let b4b = b.conv(format!("{name}/d1x7_1"), b4a, ConvParams::rect(192, 1, 7))?;
    let b4c = b.conv(format!("{name}/d7x1_1"), b4b, ConvParams::rect(224, 7, 1))?;
    let b4d = b.conv(format!("{name}/d1x7_2"), b4c, ConvParams::rect(224, 1, 7))?;
    let b4 = b.conv(format!("{name}/d7x1_2"), b4d, ConvParams::rect(256, 7, 1))?;
    b.concat(format!("{name}/output"), &[b1, b2, b3, b4])
}

/// Reduction-B: 1024×17×17 -> 1536×8×8.
fn reduction_b(b: &mut GraphBuilder, from: NodeId) -> Result<NodeId, GraphError> {
    b.set_block("reduction_b");
    let p = b.max_pool("reduction_b/pool", from, 3, 2, 0)?;
    let c1a = b.conv("reduction_b/3x3_reduce", from, ConvParams::pointwise(192))?;
    let c1 = b.conv("reduction_b/3x3_s2_v", c1a, valid(192, 3, 2))?;
    let t1 = b.conv("reduction_b/t_1x1", from, ConvParams::pointwise(256))?;
    let t2 = b.conv("reduction_b/t_1x7", t1, ConvParams::rect(256, 1, 7))?;
    let t3 = b.conv("reduction_b/t_7x1", t2, ConvParams::rect(320, 7, 1))?;
    let t4 = b.conv("reduction_b/t_3x3_s2_v", t3, valid(320, 3, 2))?;
    b.concat("reduction_b/output", &[p, c1, t4])
}

/// Inception-C: 1536×8×8 in and out.
fn inception_c(b: &mut GraphBuilder, from: NodeId, name: &str) -> Result<NodeId, GraphError> {
    b.set_block(name);
    let bp = b.avg_pool(format!("{name}/pool"), from, 3, 1, 1)?;
    let b1 = b.conv(format!("{name}/pool_proj"), bp, ConvParams::pointwise(256))?;
    let b2 = b.conv(format!("{name}/1x1"), from, ConvParams::pointwise(256))?;
    let b3a = b.conv(
        format!("{name}/split_reduce"),
        from,
        ConvParams::pointwise(384),
    )?;
    let b3l = b.conv(
        format!("{name}/split_1x3"),
        b3a,
        ConvParams::rect(256, 1, 3),
    )?;
    let b3r = b.conv(
        format!("{name}/split_3x1"),
        b3a,
        ConvParams::rect(256, 3, 1),
    )?;
    let b4a = b.conv(
        format!("{name}/dsplit_reduce"),
        from,
        ConvParams::pointwise(384),
    )?;
    let b4b = b.conv(
        format!("{name}/dsplit_1x3"),
        b4a,
        ConvParams::rect(448, 1, 3),
    )?;
    let b4c = b.conv(
        format!("{name}/dsplit_3x1"),
        b4b,
        ConvParams::rect(512, 3, 1),
    )?;
    let b4l = b.conv(
        format!("{name}/dsplit_out_3x1"),
        b4c,
        ConvParams::rect(256, 3, 1),
    )?;
    let b4r = b.conv(
        format!("{name}/dsplit_out_1x3"),
        b4c,
        ConvParams::rect(256, 1, 3),
    )?;
    b.concat(format!("{name}/output"), &[b1, b2, b3l, b3r, b4l, b4r])
}

/// Builds Inception-v4 at 299×299.
///
/// The deepest and most branch-heavy of the paper's benchmarks; its 14
/// inception blocks define the 2^14-point design space of Fig. 2(b).
///
/// # Panics
///
/// Never panics for this fixed, known-valid architecture.
#[must_use]
pub fn inception_v4() -> Graph {
    let mut b = GraphBuilder::new("inception_v4");
    let x = b.input(FeatureShape::new(3, 299, 299)).expect("input");
    let mut cur = stem(&mut b, x).expect("stem");
    for i in 1..=4 {
        cur = inception_a(&mut b, cur, &format!("inception_a{i}")).expect("inception_a");
    }
    cur = reduction_a(&mut b, cur).expect("reduction_a");
    for i in 1..=7 {
        cur = inception_b(&mut b, cur, &format!("inception_b{i}")).expect("inception_b");
    }
    cur = reduction_b(&mut b, cur).expect("reduction_b");
    for i in 1..=3 {
        cur = inception_c(&mut b, cur, &format!("inception_c{i}")).expect("inception_c");
    }
    b.set_block("classifier");
    let gap = b.global_avg_pool("gap", cur).expect("gap");
    let fc = b.fc("fc1000", gap, 1000).expect("fc");
    b.finish(fc)
        .expect("inception_v4 is acyclic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::summarize;

    #[test]
    fn stem_shapes() {
        let g = inception_v4();
        assert_eq!(
            g.node_by_name("stem/concat1").unwrap().output_shape(),
            FeatureShape::new(160, 73, 73)
        );
        assert_eq!(
            g.node_by_name("stem/concat2").unwrap().output_shape(),
            FeatureShape::new(192, 71, 71)
        );
        assert_eq!(
            g.node_by_name("stem/concat3").unwrap().output_shape(),
            FeatureShape::new(384, 35, 35)
        );
    }

    #[test]
    fn block_shapes_are_stationary() {
        let g = inception_v4();
        for i in 1..=4 {
            assert_eq!(
                g.node_by_name(&format!("inception_a{i}/output"))
                    .unwrap()
                    .output_shape(),
                FeatureShape::new(384, 35, 35)
            );
        }
        for i in 1..=7 {
            assert_eq!(
                g.node_by_name(&format!("inception_b{i}/output"))
                    .unwrap()
                    .output_shape(),
                FeatureShape::new(1024, 17, 17)
            );
        }
        for i in 1..=3 {
            assert_eq!(
                g.node_by_name(&format!("inception_c{i}/output"))
                    .unwrap()
                    .output_shape(),
                FeatureShape::new(1536, 8, 8)
            );
        }
    }

    #[test]
    fn reduction_shapes() {
        let g = inception_v4();
        assert_eq!(
            g.node_by_name("reduction_a/output").unwrap().output_shape(),
            FeatureShape::new(1024, 17, 17)
        );
        assert_eq!(
            g.node_by_name("reduction_b/output").unwrap().output_shape(),
            FeatureShape::new(1536, 8, 8)
        );
    }

    #[test]
    fn fourteen_inception_blocks() {
        let g = inception_v4();
        let n = g
            .blocks()
            .iter()
            .filter(|b| b.starts_with("inception_"))
            .count();
        assert_eq!(n, 14);
    }

    #[test]
    fn conv_layer_count() {
        // stem 11 + A 7*4 + redA 4 + B 10*7 + redB 6 + C 10*3 = 149.
        assert_eq!(inception_v4().conv_layers().count(), 149);
    }

    #[test]
    fn macs_near_published() {
        // Inception-v4 ≈ 12.3 GMACs at 299².
        let gmacs = summarize(&inception_v4()).total_macs as f64 / 1e9;
        assert!((10.0..14.0).contains(&gmacs), "got {gmacs} GMACs");
    }

    #[test]
    fn params_near_published_42m() {
        let m = summarize(&inception_v4()).total_weight_elems as f64 / 1e6;
        assert!((35.0..48.0).contains(&m), "got {m} M params");
    }
}
