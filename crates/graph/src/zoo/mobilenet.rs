//! MobileNet v1 (Howard et al., 2017).
//!
//! Thirteen depthwise-separable blocks (3×3 depthwise conv → 1×1
//! pointwise conv): the smallest real network in the zoo and the
//! latency-critical tenant in multi-model co-planning scenarios —
//! almost all of its ~4.2 M weights sit in the pointwise convs and the
//! final classifier, so weight traffic is cheap but the depthwise
//! layers are badly compute-starved on a dense systolic array.

use crate::{ConvParams, FeatureShape, Graph, GraphBuilder, GraphError, NodeId};

/// One depthwise-separable block: 3×3 depthwise at `stride` over the
/// incoming channels, then 1×1 pointwise to `out` channels.
fn separable(
    b: &mut GraphBuilder,
    from: NodeId,
    idx: usize,
    in_channels: usize,
    out: usize,
    stride: usize,
) -> Result<NodeId, GraphError> {
    b.set_block(format!("sep{idx}"));
    let dw = b.conv(
        format!("sep{idx}/dw3x3"),
        from,
        ConvParams::depthwise(in_channels, 3, stride, 1),
    )?;
    b.conv(format!("sep{idx}/pw1x1"), dw, ConvParams::pointwise(out))
}

/// Builds MobileNet v1 (width multiplier 1.0) at 224×224.
///
/// # Panics
///
/// Never panics for this fixed, known-valid architecture.
#[must_use]
pub fn mobilenet() -> Graph {
    let mut b = GraphBuilder::new("mobilenet");
    let x = b.input(FeatureShape::new(3, 224, 224)).expect("input");
    b.set_block("stem");
    let mut cur = b
        .conv("conv1", x, ConvParams::square(32, 3, 2, 1))
        .expect("conv1"); // 112

    // (out_channels, stride) for the 13 separable blocks.
    let blocks: [(usize, usize); 13] = [
        (64, 1),
        (128, 2), // 56
        (128, 1),
        (256, 2), // 28
        (256, 1),
        (512, 2), // 14
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2), // 7
        (1024, 1),
    ];
    let mut channels = 32;
    for (idx, &(out, stride)) in blocks.iter().enumerate() {
        cur = separable(&mut b, cur, idx + 1, channels, out, stride)
            .unwrap_or_else(|e| panic!("sep{}: {e}", idx + 1));
        channels = out;
    }

    b.set_block("classifier");
    let gap = b.global_avg_pool("gap", cur).expect("gap");
    let fc = b.fc("fc1000", gap, 1000).expect("fc1000");
    b.finish(fc).expect("mobilenet is acyclic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::summarize;
    use crate::OpKind;

    #[test]
    fn layer_counts() {
        // 1 stem + 13 blocks x 2 convs = 27 convs, plus 1 FC.
        let g = mobilenet();
        assert_eq!(g.conv_layers().count(), 27);
        assert_eq!(g.compute_layers().count(), 28);
    }

    #[test]
    fn depthwise_layers_are_grouped() {
        let g = mobilenet();
        let dw = g.node_by_name("sep1/dw3x3").unwrap();
        match dw.op {
            OpKind::Conv(p) => assert_eq!(p.groups, 32),
            ref other => panic!("expected conv, got {other}"),
        }
        assert_eq!(dw.output_shape(), FeatureShape::new(32, 112, 112));
    }

    #[test]
    fn feature_resolution_ladder() {
        let g = mobilenet();
        assert_eq!(
            g.node_by_name("sep2/pw1x1").unwrap().output_shape(),
            FeatureShape::new(128, 56, 56)
        );
        assert_eq!(
            g.node_by_name("sep13/pw1x1").unwrap().output_shape(),
            FeatureShape::new(1024, 7, 7)
        );
    }

    #[test]
    fn params_near_published_4_2m() {
        let m = summarize(&mobilenet()).total_weight_elems as f64 / 1e6;
        assert!((3.9..4.5).contains(&m), "got {m} M params");
    }

    #[test]
    fn output_is_class_vector() {
        let g = mobilenet();
        assert_eq!(g.output_node().output_shape(), FeatureShape::vector(1000));
    }
}
