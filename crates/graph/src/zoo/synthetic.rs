//! Deterministic synthetic inception-style graphs for scale testing.
//!
//! The paper's zoo tops out around 150 compute layers; the analysis
//! passes (liveness, interference coloring, prefetch planning) must
//! also hold up on thousand-node graphs. [`synthetic`] grows a graph
//! of inception modules, residual blocks and plain convolutions to a
//! requested node count from a seeded PRNG, so benchmarks and property
//! tests can sweep graph size without shipping giant model builders.
//!
//! Everything is a pure function of `(depth, branching, seed)` — no
//! global RNG, no time — so two processes always build byte-identical
//! graphs and harness memoization keys stay stable.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use crate::op::ConvParams;
use crate::tensor::FeatureShape;

/// SplitMix64: tiny, deterministic, good-enough mixing for structure
/// choices. Not cryptographic; never used for anything but topology.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zeros fixed point.
        Self(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Builds a deterministic inception-style graph with roughly `depth`
/// nodes (the generator stops adding modules once the builder reaches
/// `depth`, so the final count lands within one module of it).
///
/// `branching` caps the number of parallel branches per inception
/// module (clamped to `2..=8`); `seed` selects the topology. Channel
/// widths and spatial extents stay small so the FPGA profile of even a
/// ~4k-node instance is cheap to compute — these graphs exercise the
/// *passes*, not the latency model.
///
/// # Panics
///
/// Panics if `depth == 0`.
///
/// # Examples
///
/// ```
/// let g = lcmm_graph::zoo::synthetic(256, 4, 7);
/// assert!(g.len() >= 256);
/// assert_eq!(g.name(), "synthetic_256x4x7");
/// let again = lcmm_graph::zoo::synthetic(256, 4, 7);
/// assert_eq!(g.len(), again.len());
/// ```
#[must_use]
pub fn synthetic(depth: usize, branching: usize, seed: u64) -> Graph {
    synthetic_scaled(depth, branching, seed, 100)
}

/// [`synthetic`] with every module channel width scaled to
/// `width_percent`% (floored at one channel). Scale 100 is exactly
/// [`synthetic`] — the PRNG draw sequence does not depend on the scale,
/// so a scaled graph keeps the topology of its unscaled twin and only
/// shrinks (or grows) tensor sizes. The audit shrinker's "halve-tensor"
/// pass relies on this to minimise failing graphs without changing
/// their shape.
///
/// # Panics
///
/// Panics if `depth == 0` or `width_percent == 0`.
///
/// # Examples
///
/// ```
/// let full = lcmm_graph::zoo::synthetic(128, 4, 7);
/// let half = lcmm_graph::zoo::synthetic_scaled(128, 4, 7, 50);
/// assert_eq!(full.len(), half.len());
/// assert_eq!(half.name(), "synthetic_128x4x7@50");
/// ```
#[must_use]
pub fn synthetic_scaled(depth: usize, branching: usize, seed: u64, width_percent: usize) -> Graph {
    generate(depth, branching, seed, width_percent, false)
}

/// Shortcut-heavy variant of [`synthetic_scaled`]: the module mix is
/// tilted from inception concats toward residual blocks, so the graph
/// is dominated by the conv→conv→eltwise-add diamonds that fused-layer
/// planning targets — the synthetic counterpart of ResNet/MobileNet
/// trunks. The CLI accepts it as `synthetic:DxBxS[@W%]+res`.
///
/// Same determinism contract as [`synthetic_scaled`]: a pure function
/// of its arguments, and `width_percent` only rescales channel widths
/// without touching the PRNG draw sequence.
///
/// # Panics
///
/// Panics if `depth == 0` or `width_percent == 0`.
///
/// # Examples
///
/// ```
/// let g = lcmm_graph::zoo::synthetic_shortcut(128, 2, 7, 100);
/// assert_eq!(g.name(), "synthetic_128x2x7+res");
/// assert!(g.len() >= 128);
/// ```
#[must_use]
pub fn synthetic_shortcut(
    depth: usize,
    branching: usize,
    seed: u64,
    width_percent: usize,
) -> Graph {
    generate(depth, branching, seed, width_percent, true)
}

fn generate(
    depth: usize,
    branching: usize,
    seed: u64,
    width_percent: usize,
    shortcut_heavy: bool,
) -> Graph {
    assert!(depth > 0, "synthetic graph needs at least one node");
    assert!(width_percent > 0, "width scale must be positive");
    let branching = branching.clamp(2, 8);
    let mut rng = Rng::new(
        seed ^ (depth as u64).wrapping_mul(0x100_0000_01b3) ^ (branching as u64).rotate_left(17),
    );
    let mut name = if width_percent == 100 {
        format!("synthetic_{depth}x{branching}x{seed}")
    } else {
        format!("synthetic_{depth}x{branching}x{seed}@{width_percent}")
    };
    if shortcut_heavy {
        name.push_str("+res");
    }
    let mut b = GraphBuilder::new(name);
    let x = b.input(FeatureShape::new(16, 32, 32)).expect("input");
    let mut cur = b
        .conv("stem", x, ConvParams::square(24, 3, 1, 1))
        .expect("stem conv is same-padded");

    let mut module = 0usize;
    let mut pools = 0usize;
    while b.len() < depth {
        module += 1;
        b.set_block(format!("module{module}"));
        let draw = rng.below(10);
        // The shortcut-heavy mix flips the inception/residual ratio:
        // ~70% of modules become residual diamonds instead of ~20%.
        let kind = if shortcut_heavy {
            match draw {
                0..=1 => ModuleKind::Inception,
                2..=8 => ModuleKind::Residual,
                _ => ModuleKind::Conv,
            }
        } else {
            match draw {
                0..=4 => ModuleKind::Inception,
                5..=6 => ModuleKind::Residual,
                _ => ModuleKind::Conv,
            }
        };
        cur = match kind {
            // Inception module: parallel branches joined by a concat.
            ModuleKind::Inception => {
                inception(&mut b, &mut rng, cur, module, branching, width_percent)
            }
            // Residual block: conv + eltwise add back onto the trunk.
            ModuleKind::Residual => residual(&mut b, &mut rng, cur, module, width_percent),
            // Plain conv, sometimes strided via a max-pool first.
            ModuleKind::Conv => {
                let shape = b.shape(cur).expect("trunk node exists");
                if pools < 3 && shape.height >= 16 && rng.below(4) == 0 {
                    pools += 1;
                    cur = b
                        .max_pool(format!("m{module}/pool"), cur, 2, 2, 0)
                        .expect("spatial >= 16 pools cleanly");
                }
                let out = pick_channels(&mut rng, width_percent);
                b.conv(
                    format!("m{module}/conv"),
                    cur,
                    ConvParams::square(out, 3, 1, 1),
                )
                .expect("same-padded conv is valid")
            }
        };
    }
    b.clear_block();
    let gap = b
        .global_avg_pool("gap", cur)
        .expect("trunk node exists for gap");
    let fc = b.fc("fc", gap, 64).expect("nonzero fc width");
    b.finish(fc)
        .expect("generator graphs are acyclic by construction")
}

enum ModuleKind {
    Inception,
    Residual,
    Conv,
}

/// Channel widths stay in a narrow band: wide enough to make distinct
/// buffer sizes, narrow enough that profiles stay cheap at 4k nodes.
/// The PRNG draw happens before scaling so the draw sequence is the
/// same at every `width_percent`.
fn pick_channels(rng: &mut Rng, width_percent: usize) -> usize {
    let base = 8 + 8 * rng.below(9) as usize; // 8, 16, …, 72
    (base * width_percent / 100).max(1)
}

fn inception(
    b: &mut GraphBuilder,
    rng: &mut Rng,
    from: NodeId,
    module: usize,
    branching: usize,
    width_percent: usize,
) -> NodeId {
    let branches = 2 + rng.below(branching as u64 - 1) as usize;
    let mut outs = Vec::with_capacity(branches);
    for br in 0..branches {
        let mid = pick_channels(rng, width_percent);
        let out = pick_channels(rng, width_percent);
        let reduce = b
            .conv(
                format!("m{module}/b{br}/reduce"),
                from,
                ConvParams::pointwise(mid),
            )
            .expect("pointwise conv is always valid");
        let node = match rng.below(3) {
            0 => reduce,
            1 => b
                .conv(
                    format!("m{module}/b{br}/3x3"),
                    reduce,
                    ConvParams::square(out, 3, 1, 1),
                )
                .expect("same-padded 3x3 is valid"),
            _ => b
                .conv(
                    format!("m{module}/b{br}/5x5"),
                    reduce,
                    ConvParams::square(out, 5, 1, 2),
                )
                .expect("same-padded 5x5 is valid"),
        };
        outs.push(node);
    }
    b.concat(format!("m{module}/concat"), &outs)
        .expect("branches share the input's spatial extent")
}

fn residual(
    b: &mut GraphBuilder,
    rng: &mut Rng,
    from: NodeId,
    module: usize,
    width_percent: usize,
) -> NodeId {
    let shape = b.shape(from).expect("trunk node exists");
    let mid = pick_channels(rng, width_percent);
    let squeeze = b
        .conv(
            format!("m{module}/squeeze"),
            from,
            ConvParams::pointwise(mid),
        )
        .expect("pointwise conv is always valid");
    let expand = b
        .conv(
            format!("m{module}/expand"),
            squeeze,
            ConvParams::square(shape.channels, 3, 1, 1),
        )
        .expect("same-padded conv restores the trunk width");
    b.eltwise_add(format!("m{module}/add"), &[from, expand])
        .expect("expand restores the trunk shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let a = synthetic(300, 4, 7);
        let c = synthetic(300, 4, 7);
        assert_eq!(a.len(), c.len());
        let names_a: Vec<&str> = a.iter().map(crate::Node::name).collect();
        let names_c: Vec<&str> = c.iter().map(crate::Node::name).collect();
        assert_eq!(names_a, names_c);
    }

    #[test]
    fn seed_changes_topology() {
        let a = synthetic(300, 4, 7);
        let c = synthetic(300, 4, 8);
        let names_a: Vec<&str> = a.iter().map(crate::Node::name).collect();
        let names_c: Vec<&str> = c.iter().map(crate::Node::name).collect();
        assert_ne!(names_a, names_c, "different seeds must differ");
    }

    #[test]
    fn reaches_requested_depth() {
        for depth in [64, 500, 1024] {
            let g = synthetic(depth, 4, 7);
            assert!(g.len() >= depth, "{} < {depth}", g.len());
            assert!(g.len() < depth + 40, "overshoot: {}", g.len());
        }
    }

    #[test]
    fn branching_is_clamped_and_valid() {
        for branching in [0, 1, 2, 6, 20] {
            let g = synthetic(128, branching, 3);
            assert!(g.len() >= 128);
        }
    }

    #[test]
    fn four_k_nodes_build_quickly() {
        let g = synthetic(4096, 4, 7);
        assert!(g.len() >= 4096);
    }

    #[test]
    fn scale_100_is_the_unscaled_graph() {
        let a = synthetic(200, 4, 7);
        let s = synthetic_scaled(200, 4, 7, 100);
        assert_eq!(a.name(), s.name());
        assert_eq!(a.len(), s.len());
        for (na, ns) in a.iter().zip(s.iter()) {
            assert_eq!(na.name(), ns.name());
            assert_eq!(na.output_shape(), ns.output_shape());
        }
    }

    #[test]
    fn scaling_preserves_topology_and_shrinks_tensors() {
        let full = synthetic(200, 4, 7);
        let half = synthetic_scaled(200, 4, 7, 50);
        assert_eq!(full.len(), half.len());
        let full_elems: u64 = full.iter().map(|n| n.output_shape().elems()).sum();
        let half_elems: u64 = half.iter().map(|n| n.output_shape().elems()).sum();
        assert!(half_elems < full_elems, "{half_elems} !< {full_elems}");
        let names_full: Vec<&str> = full.iter().map(crate::Node::name).collect();
        let names_half: Vec<&str> = half.iter().map(crate::Node::name).collect();
        assert_eq!(names_full, names_half, "scale must not change topology");
    }

    #[test]
    fn tiny_scale_floors_at_one_channel() {
        let g = synthetic_scaled(64, 2, 3, 1);
        assert!(g.len() >= 64);
        assert_eq!(g.name(), "synthetic_64x2x3@1");
    }

    #[test]
    fn shortcut_variant_is_residual_dominated() {
        use crate::op::OpKind;
        let count_adds = |g: &Graph| {
            g.iter()
                .filter(|n| matches!(n.op(), OpKind::EltwiseAdd))
                .count()
        };
        let plain = synthetic(256, 3, 11);
        let res = synthetic_shortcut(256, 3, 11, 100);
        assert_eq!(res.name(), "synthetic_256x3x11+res");
        assert!(res.len() >= 256);
        assert!(
            count_adds(&res) > 2 * count_adds(&plain).max(1),
            "shortcut variant must carry far more residual joins: {} vs {}",
            count_adds(&res),
            count_adds(&plain)
        );
        // Deterministic, and width scaling composes with the knob.
        let again = synthetic_shortcut(256, 3, 11, 100);
        let names_a: Vec<&str> = res.iter().map(crate::Node::name).collect();
        let names_b: Vec<&str> = again.iter().map(crate::Node::name).collect();
        assert_eq!(names_a, names_b);
        let half = synthetic_shortcut(256, 3, 11, 50);
        assert_eq!(half.name(), "synthetic_256x3x11@50+res");
        assert_eq!(half.len(), res.len());
    }
}
