//! Inception-ResNet-v2 (Szegedy et al., 2016 — the same paper the LCMM
//! evaluation cites for Inception-v4).
//!
//! Residual connections *around* inception branches: every block ends
//! in a linear 1×1 projection added back onto the block input, so the
//! graph mixes the concat-heavy and add-heavy topologies that stress
//! LCMM's liveness analysis in different ways.

use crate::{ConvParams, FeatureShape, Graph, GraphBuilder, GraphError, NodeId};

fn valid(out: usize, k: usize, s: usize) -> ConvParams {
    ConvParams::square(out, k, s, 0)
}

fn same(out: usize, k: usize) -> ConvParams {
    ConvParams::square(out, k, 1, (k - 1) / 2)
}

/// The Inception-v4 stem (299 → 35×35×384), shared by both networks of
/// the reference paper.
fn stem(b: &mut GraphBuilder, x: NodeId) -> Result<NodeId, GraphError> {
    b.set_block("stem");
    let c1 = b.conv("stem/conv1_3x3_s2_v", x, valid(32, 3, 2))?;
    let c2 = b.conv("stem/conv2_3x3_v", c1, valid(32, 3, 1))?;
    let c3 = b.conv("stem/conv3_3x3", c2, same(64, 3))?;
    let p1 = b.max_pool("stem/pool1_3x3_s2_v", c3, 3, 2, 0)?;
    let c4 = b.conv("stem/conv4_3x3_s2_v", c3, valid(96, 3, 2))?;
    let cat1 = b.concat("stem/concat1", &[p1, c4])?;
    let a1 = b.conv("stem/a_1x1", cat1, ConvParams::pointwise(64))?;
    let a2 = b.conv("stem/a_3x3_v", a1, valid(96, 3, 1))?;
    let b1 = b.conv("stem/b_1x1", cat1, ConvParams::pointwise(64))?;
    let b2 = b.conv("stem/b_7x1", b1, ConvParams::rect(64, 7, 1))?;
    let b3 = b.conv("stem/b_1x7", b2, ConvParams::rect(64, 1, 7))?;
    let b4 = b.conv("stem/b_3x3_v", b3, valid(96, 3, 1))?;
    let cat2 = b.concat("stem/concat2", &[a2, b4])?;
    let c5 = b.conv("stem/conv5_3x3_s2_v", cat2, valid(192, 3, 2))?;
    let p2 = b.max_pool("stem/pool2_3x3_s2_v", cat2, 3, 2, 0)?;
    b.concat("stem/concat3", &[c5, p2])
}

/// Inception-ResNet-A: 35×35×384, three branches → 1×1 back to 384,
/// residual add.
fn block_a(b: &mut GraphBuilder, from: NodeId, name: &str) -> Result<NodeId, GraphError> {
    b.set_block(name);
    let b1 = b.conv(format!("{name}/b1_1x1"), from, ConvParams::pointwise(32))?;
    let b2a = b.conv(format!("{name}/b2_1x1"), from, ConvParams::pointwise(32))?;
    let b2 = b.conv(format!("{name}/b2_3x3"), b2a, same(32, 3))?;
    let b3a = b.conv(format!("{name}/b3_1x1"), from, ConvParams::pointwise(32))?;
    let b3b = b.conv(format!("{name}/b3_3x3a"), b3a, same(48, 3))?;
    let b3 = b.conv(format!("{name}/b3_3x3b"), b3b, same(64, 3))?;
    let cat = b.concat(format!("{name}/concat"), &[b1, b2, b3])?;
    let up = b.conv(format!("{name}/up_1x1"), cat, ConvParams::pointwise(384))?;
    b.eltwise_add(format!("{name}/add"), &[from, up])
}

/// Reduction-A: 35×35×384 → 17×17×1152.
fn reduction_a(b: &mut GraphBuilder, from: NodeId) -> Result<NodeId, GraphError> {
    b.set_block("reduction_a");
    let p = b.max_pool("reduction_a/pool", from, 3, 2, 0)?;
    let c1 = b.conv("reduction_a/3x3_s2_v", from, valid(384, 3, 2))?;
    let t1 = b.conv("reduction_a/t_1x1", from, ConvParams::pointwise(256))?;
    let t2 = b.conv("reduction_a/t_3x3", t1, same(256, 3))?;
    let t3 = b.conv("reduction_a/t_3x3_s2_v", t2, valid(384, 3, 2))?;
    b.concat("reduction_a/output", &[p, c1, t3])
}

/// Inception-ResNet-B: 17×17×1152.
fn block_b(b: &mut GraphBuilder, from: NodeId, name: &str) -> Result<NodeId, GraphError> {
    b.set_block(name);
    let b1 = b.conv(format!("{name}/b1_1x1"), from, ConvParams::pointwise(192))?;
    let b2a = b.conv(format!("{name}/b2_1x1"), from, ConvParams::pointwise(128))?;
    let b2b = b.conv(format!("{name}/b2_1x7"), b2a, ConvParams::rect(160, 1, 7))?;
    let b2 = b.conv(format!("{name}/b2_7x1"), b2b, ConvParams::rect(192, 7, 1))?;
    let cat = b.concat(format!("{name}/concat"), &[b1, b2])?;
    let up = b.conv(format!("{name}/up_1x1"), cat, ConvParams::pointwise(1152))?;
    b.eltwise_add(format!("{name}/add"), &[from, up])
}

/// Reduction-B: 17×17×1152 → 8×8×2144.
fn reduction_b(b: &mut GraphBuilder, from: NodeId) -> Result<NodeId, GraphError> {
    b.set_block("reduction_b");
    let p = b.max_pool("reduction_b/pool", from, 3, 2, 0)?;
    let t1a = b.conv("reduction_b/t1_1x1", from, ConvParams::pointwise(256))?;
    let t1 = b.conv("reduction_b/t1_3x3_s2_v", t1a, valid(384, 3, 2))?;
    let t2a = b.conv("reduction_b/t2_1x1", from, ConvParams::pointwise(256))?;
    let t2 = b.conv("reduction_b/t2_3x3_s2_v", t2a, valid(288, 3, 2))?;
    let t3a = b.conv("reduction_b/t3_1x1", from, ConvParams::pointwise(256))?;
    let t3b = b.conv("reduction_b/t3_3x3", t3a, same(288, 3))?;
    let t3 = b.conv("reduction_b/t3_3x3_s2_v", t3b, valid(320, 3, 2))?;
    b.concat("reduction_b/output", &[p, t1, t2, t3])
}

/// Inception-ResNet-C: 8×8×2144.
fn block_c(b: &mut GraphBuilder, from: NodeId, name: &str) -> Result<NodeId, GraphError> {
    b.set_block(name);
    let b1 = b.conv(format!("{name}/b1_1x1"), from, ConvParams::pointwise(192))?;
    let b2a = b.conv(format!("{name}/b2_1x1"), from, ConvParams::pointwise(192))?;
    let b2b = b.conv(format!("{name}/b2_1x3"), b2a, ConvParams::rect(224, 1, 3))?;
    let b2 = b.conv(format!("{name}/b2_3x1"), b2b, ConvParams::rect(256, 3, 1))?;
    let cat = b.concat(format!("{name}/concat"), &[b1, b2])?;
    let up = b.conv(format!("{name}/up_1x1"), cat, ConvParams::pointwise(2144))?;
    b.eltwise_add(format!("{name}/add"), &[from, up])
}

/// Builds Inception-ResNet-v2 at 299×299: the Inception-v4 stem, 5
/// IR-A, Reduction-A, 10 IR-B, Reduction-B, 5 IR-C blocks.
///
/// # Panics
///
/// Never panics for this fixed, known-valid architecture.
#[must_use]
pub fn inception_resnet_v2() -> Graph {
    let mut b = GraphBuilder::new("inception_resnet_v2");
    let x = b.input(FeatureShape::new(3, 299, 299)).expect("input");
    let mut cur = stem(&mut b, x).expect("stem");
    for i in 1..=5 {
        cur = block_a(&mut b, cur, &format!("ir_a{i}")).expect("block_a");
    }
    cur = reduction_a(&mut b, cur).expect("reduction_a");
    for i in 1..=10 {
        cur = block_b(&mut b, cur, &format!("ir_b{i}")).expect("block_b");
    }
    cur = reduction_b(&mut b, cur).expect("reduction_b");
    for i in 1..=5 {
        cur = block_c(&mut b, cur, &format!("ir_c{i}")).expect("block_c");
    }
    b.set_block("classifier");
    let head = b
        .conv("head_1x1", cur, ConvParams::pointwise(1536))
        .expect("head");
    let gap = b.global_avg_pool("gap", head).expect("gap");
    let fc = b.fc("fc1000", gap, 1000).expect("fc");
    b.finish(fc)
        .expect("inception_resnet_v2 is acyclic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::summarize;

    #[test]
    fn block_shapes() {
        let g = inception_resnet_v2();
        assert_eq!(
            g.node_by_name("ir_a5/add").unwrap().output_shape(),
            FeatureShape::new(384, 35, 35)
        );
        assert_eq!(
            g.node_by_name("ir_b10/add").unwrap().output_shape(),
            FeatureShape::new(1152, 17, 17)
        );
        assert_eq!(
            g.node_by_name("ir_c5/add").unwrap().output_shape(),
            FeatureShape::new(2144, 8, 8)
        );
    }

    #[test]
    fn conv_count() {
        // stem 11 + A 7x5 + redA 4 + B 5x10 + redB 7 + C 5x5 + head 1.
        let g = inception_resnet_v2();
        assert_eq!(g.conv_layers().count(), 11 + 35 + 4 + 50 + 7 + 25 + 1);
    }

    #[test]
    fn twenty_blocks_of_three_kinds() {
        let g = inception_resnet_v2();
        let ir: Vec<&str> = g
            .blocks()
            .into_iter()
            .filter(|b| b.starts_with("ir_"))
            .collect();
        assert_eq!(ir.len(), 20);
    }

    #[test]
    fn macs_and_params_plausible() {
        // ~11 GMACs; ~35 M conv/FC params (the published 55.8 M total
        // includes batch-norm statistics and auxiliary heads that this
        // inference graph folds away).
        let s = summarize(&inception_resnet_v2());
        let gmacs = s.total_macs as f64 / 1e9;
        let params = s.total_weight_elems as f64 / 1e6;
        assert!((8.0..16.0).contains(&gmacs), "got {gmacs} GMACs");
        assert!((28.0..45.0).contains(&params), "got {params} M params");
    }

    #[test]
    fn residual_adds_join_block_input_and_projection() {
        let g = inception_resnet_v2();
        let add = g.node_by_name("ir_b3/add").unwrap();
        assert_eq!(add.inputs().len(), 2);
    }
}
