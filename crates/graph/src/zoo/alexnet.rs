//! AlexNet (Krizhevsky et al., 2012), without LRN and without the
//! historical two-GPU channel grouping.

use crate::{ConvParams, FeatureShape, Graph, GraphBuilder};

/// Builds AlexNet at 224×224.
///
/// A linear-topology network: the kind of model for which the uniform
/// double-buffer strategy (UMM) was originally adequate. Used by examples
/// and ablations as the "simple" counterpoint.
///
/// # Panics
///
/// Never panics for this fixed, known-valid architecture; construction
/// errors would indicate a bug in the builder itself.
#[must_use]
pub fn alexnet() -> Graph {
    let mut b = GraphBuilder::new("alexnet");
    let x = b.input(FeatureShape::new(3, 224, 224)).expect("input");
    b.set_block("features");
    // 224 -> (224 + 4 - 11)/4 + 1 = 55 with pad 2
    let c1 = b
        .conv("conv1", x, ConvParams::square(96, 11, 4, 2))
        .expect("conv1");
    let p1 = b.max_pool("pool1", c1, 3, 2, 0).expect("pool1"); // 27
    let c2 = b
        .conv("conv2", p1, ConvParams::square(256, 5, 1, 2))
        .expect("conv2");
    let p2 = b.max_pool("pool2", c2, 3, 2, 0).expect("pool2"); // 13
    let c3 = b
        .conv("conv3", p2, ConvParams::square(384, 3, 1, 1))
        .expect("conv3");
    let c4 = b
        .conv("conv4", c3, ConvParams::square(384, 3, 1, 1))
        .expect("conv4");
    let c5 = b
        .conv("conv5", c4, ConvParams::square(256, 3, 1, 1))
        .expect("conv5");
    let p5 = b.max_pool("pool5", c5, 3, 2, 0).expect("pool5"); // 6
    b.set_block("classifier");
    let f6 = b.fc("fc6", p5, 4096).expect("fc6");
    let f7 = b.fc("fc7", f6, 4096).expect("fc7");
    let f8 = b.fc("fc8", f7, 1000).expect("fc8");
    b.finish(f8).expect("alexnet is acyclic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::summarize;

    #[test]
    fn layer_counts() {
        let g = alexnet();
        assert_eq!(g.conv_layers().count(), 5);
        assert_eq!(g.compute_layers().count(), 8);
    }

    #[test]
    fn feature_pipeline_shapes() {
        let g = alexnet();
        assert_eq!(
            g.node_by_name("conv1").unwrap().output_shape(),
            FeatureShape::new(96, 55, 55)
        );
        assert_eq!(
            g.node_by_name("pool2").unwrap().output_shape(),
            FeatureShape::new(256, 13, 13)
        );
        assert_eq!(
            g.node_by_name("pool5").unwrap().output_shape(),
            FeatureShape::new(256, 6, 6)
        );
        assert_eq!(g.output_node().output_shape(), FeatureShape::vector(1000));
    }

    #[test]
    fn mac_count_near_published() {
        // AlexNet (ungrouped) is ~0.7-1.2 GMACs for convs plus ~59M FC.
        let s = summarize(&alexnet());
        let gmacs = s.total_macs as f64 / 1e9;
        assert!((0.8..2.0).contains(&gmacs), "got {gmacs} GMACs");
    }

    #[test]
    fn fc_weights_dominate() {
        // The classic AlexNet imbalance: fc6 alone is 256*6*6*4096 weights.
        let g = alexnet();
        let fc6 = g.node_by_name("fc6").unwrap().id();
        assert_eq!(g.node_weight_elems(fc6), 256 * 6 * 6 * 4096);
    }
}
