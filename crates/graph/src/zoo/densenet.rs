//! DenseNet-121 (Huang et al., 2017).
//!
//! The LCMM paper's introduction names the dense block as one of the
//! non-linear structures that break uniform double-buffer allocation:
//! every layer of a dense block reads the concatenation of *all* its
//! predecessors, so feature lifespans stretch across the whole block and
//! the interference structure is far denser than in inception modules.

use crate::{ConvParams, FeatureShape, Graph, GraphBuilder, GraphError, NodeId};

/// Growth rate `k` of DenseNet-121.
const GROWTH: usize = 32;

/// One dense layer: 1×1 bottleneck to `4k` channels, then 3×3 to `k`.
/// Returns the new feature's node; the caller concatenates.
fn dense_layer(b: &mut GraphBuilder, from: NodeId, name: &str) -> Result<NodeId, GraphError> {
    let bottleneck = b.conv(
        format!("{name}/1x1"),
        from,
        ConvParams::pointwise(4 * GROWTH),
    )?;
    b.conv(
        format!("{name}/3x3"),
        bottleneck,
        ConvParams::square(GROWTH, 3, 1, 1),
    )
}

/// A dense block of `layers` layers starting from `from`.
fn dense_block(
    b: &mut GraphBuilder,
    from: NodeId,
    block_idx: usize,
    layers: usize,
) -> Result<NodeId, GraphError> {
    let mut state = from;
    for l in 1..=layers {
        b.set_block(format!("dense{block_idx}_{l}"));
        let name = format!("dense{block_idx}/layer{l}");
        let fresh = dense_layer(b, state, &name)?;
        state = b.concat(format!("{name}/concat"), &[state, fresh])?;
    }
    Ok(state)
}

/// Transition: 1×1 conv halving channels, then 2×2/2 average pool.
fn transition(b: &mut GraphBuilder, from: NodeId, idx: usize) -> Result<NodeId, GraphError> {
    b.set_block(format!("transition{idx}"));
    let channels = b.shape(from).expect("from exists").channels / 2;
    let conv = b.conv(
        format!("transition{idx}/1x1"),
        from,
        ConvParams::pointwise(channels),
    )?;
    b.avg_pool(format!("transition{idx}/pool"), conv, 2, 2, 0)
}

/// Builds DenseNet-121 at 224×224 (blocks of 6, 12, 24, 16 layers,
/// growth rate 32).
///
/// # Panics
///
/// Never panics for this fixed, known-valid architecture.
#[must_use]
pub fn densenet121() -> Graph {
    let mut b = GraphBuilder::new("densenet121");
    let x = b.input(FeatureShape::new(3, 224, 224)).expect("input");
    b.set_block("stem");
    let c1 = b
        .conv("conv1", x, ConvParams::square(2 * GROWTH, 7, 2, 3))
        .expect("conv1");
    let p1 = b.max_pool("pool1", c1, 3, 2, 1).expect("pool1"); // 56x56, 64ch

    let d1 = dense_block(&mut b, p1, 1, 6).expect("dense1"); // 256ch
    let t1 = transition(&mut b, d1, 1).expect("t1"); // 128ch 28x28
    let d2 = dense_block(&mut b, t1, 2, 12).expect("dense2"); // 512ch
    let t2 = transition(&mut b, d2, 2).expect("t2"); // 256ch 14x14
    let d3 = dense_block(&mut b, t2, 3, 24).expect("dense3"); // 1024ch
    let t3 = transition(&mut b, d3, 3).expect("t3"); // 512ch 7x7
    let d4 = dense_block(&mut b, t3, 4, 16).expect("dense4"); // 1024ch

    b.set_block("classifier");
    let gap = b.global_avg_pool("gap", d4).expect("gap");
    let fc = b.fc("fc1000", gap, 1000).expect("fc");
    b.finish(fc)
        .expect("densenet121 is acyclic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::summarize;
    use crate::OpKind;

    #[test]
    fn conv_counts() {
        // 1 stem + 2 per dense layer x (6+12+24+16) + 3 transitions.
        let g = densenet121();
        assert_eq!(g.conv_layers().count(), 1 + 2 * 58 + 3);
        // "121" counts weighted layers: 120 convs + 1 fc.
        assert_eq!(g.compute_layers().count(), 121);
    }

    #[test]
    fn block_channel_growth() {
        let g = densenet121();
        assert_eq!(
            g.node_by_name("dense1/layer6/concat")
                .unwrap()
                .output_shape(),
            FeatureShape::new(256, 56, 56)
        );
        assert_eq!(
            g.node_by_name("dense3/layer24/concat")
                .unwrap()
                .output_shape(),
            FeatureShape::new(1024, 14, 14)
        );
        assert_eq!(
            g.node_by_name("dense4/layer16/concat")
                .unwrap()
                .output_shape(),
            FeatureShape::new(1024, 7, 7)
        );
    }

    #[test]
    fn transitions_halve_channels_and_spatial() {
        let g = densenet121();
        assert_eq!(
            g.node_by_name("transition1/pool").unwrap().output_shape(),
            FeatureShape::new(128, 28, 28)
        );
        assert_eq!(
            g.node_by_name("transition3/pool").unwrap().output_shape(),
            FeatureShape::new(512, 7, 7)
        );
    }

    #[test]
    fn macs_and_params_near_published() {
        // DenseNet-121 ≈ 2.9 GMACs, ≈ 8.0 M params.
        let s = summarize(&densenet121());
        let gmacs = s.total_macs as f64 / 1e9;
        let params = s.total_weight_elems as f64 / 1e6;
        assert!((2.4..3.4).contains(&gmacs), "got {gmacs} GMACs");
        assert!((6.5..9.0).contains(&params), "got {params} M params");
    }

    #[test]
    fn dense_layers_read_all_predecessors() {
        // The last layer of block 1 reads a concat that resolves to the
        // block input plus the five previous fresh features.
        let g = densenet121();
        let last_in = g.node_by_name("dense1/layer6/1x1").unwrap();
        let concat = g.node(last_in.inputs()[0]);
        assert!(matches!(concat.op(), OpKind::Concat));
        let sources = lcmm_resolved_len(&g, last_in);
        assert_eq!(sources, 6); // pool1 + 5 fresh 3x3 outputs
    }

    fn lcmm_resolved_len(g: &Graph, node: &crate::Node) -> usize {
        // Local re-implementation of concat resolution (the real one
        // lives in lcmm-fpga, which this crate cannot depend on).
        let mut count = 0;
        let mut stack: Vec<_> = node.inputs().to_vec();
        while let Some(id) = stack.pop() {
            let n = g.node(id);
            if matches!(n.op(), OpKind::Concat) {
                stack.extend(n.inputs().iter().copied());
            } else {
                count += 1;
            }
        }
        count
    }
}
