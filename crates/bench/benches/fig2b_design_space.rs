//! Fig. 2(b): the 2^14-point block residency design space of
//! Inception-v4 (plus the 2^9 GoogLeNet space as the timed kernel).

use criterion::{black_box, Criterion};
use lcmm_core::design_space::{inception_blocks, sweep};
use lcmm_core::value::ValueTable;
use lcmm_core::{Evaluator, UmmBaseline};
use lcmm_fpga::{Device, Precision};

fn print_series_once() {
    let graph = lcmm_graph::zoo::inception_v4();
    let umm = UmmBaseline::build(&graph, &Device::vu9p(), Precision::Fix8);
    let evaluator = Evaluator::new(&graph, &umm.profile);
    let values = ValueTable::build(&graph, &umm.profile, Precision::Fix8);
    let blocks = inception_blocks(&graph);
    let space = sweep(&graph, &evaluator, &values, &blocks);
    let best = space.best();
    println!(
        "[fig2b] inception_v4 8-bit: {} points over {} blocks; best {:.3} ms at {:.1} MiB; \
         non-monotone in SRAM: {}",
        space.points.len(),
        blocks.len(),
        best.latency * 1e3,
        best.sram_bytes as f64 / (1 << 20) as f64,
        space.is_non_monotone()
    );
}

fn bench(c: &mut Criterion) {
    print_series_once();
    let graph = lcmm_graph::zoo::googlenet();
    let umm = UmmBaseline::build(&graph, &Device::vu9p(), Precision::Fix16);
    let evaluator = Evaluator::new(&graph, &umm.profile);
    let values = ValueTable::build(&graph, &umm.profile, Precision::Fix16);
    let blocks = inception_blocks(&graph);
    c.bench_function("fig2b/sweep_googlenet_512_points", |b| {
        b.iter(|| black_box(sweep(&graph, &evaluator, &values, &blocks)))
    });
}

fn main() {
    let mut c = lcmm_bench::criterion_heavy();
    bench(&mut c);
    c.final_summary();
}
