//! Microbenches of the framework's core algorithms at real-network
//! scale: liveness, coloring, prefetch planning, latency evaluation.

use criterion::{black_box, Criterion};
use lcmm_core::interference::InterferenceGraph;
use lcmm_core::liveness::{feature_lifespans, Schedule};
use lcmm_core::prefetch::PrefetchPlan;
use lcmm_core::value::ValueTable;
use lcmm_core::{Evaluator, Residency, ValueId};
use lcmm_fpga::{AccelDesign, Device, Precision};

fn bench(c: &mut Criterion) {
    let graph = lcmm_graph::zoo::inception_v4();
    let device = Device::vu9p();
    let design = AccelDesign::explore(&graph, &device, Precision::Fix16);
    let profile = design.profile(&graph);
    let evaluator = Evaluator::new(&graph, &profile);
    let values = ValueTable::build(&graph, &profile, Precision::Fix16);
    let schedule = Schedule::new(&graph);

    c.bench_function("algo/model_zoo_build_inception_v4", |b| {
        b.iter(|| black_box(lcmm_graph::zoo::inception_v4()))
    });
    c.bench_function("algo/latency_profile_inception_v4", |b| {
        b.iter(|| black_box(design.profile(&graph)))
    });
    c.bench_function("algo/value_table_build", |b| {
        b.iter(|| black_box(ValueTable::build(&graph, &profile, Precision::Fix16)))
    });
    c.bench_function("algo/feature_lifespans", |b| {
        b.iter(|| black_box(feature_lifespans(&schedule, values.iter())))
    });

    let spans = feature_lifespans(&schedule, values.iter());
    let items: Vec<_> = values
        .feature_candidates()
        .map(|v| (v.id, v.bytes, spans[&v.id]))
        .collect();
    c.bench_function("algo/interference_coloring", |b| {
        b.iter(|| {
            let ig = InterferenceGraph::new(items.clone());
            black_box(ig.color())
        })
    });
    c.bench_function("algo/prefetch_plan", |b| {
        b.iter(|| {
            black_box(PrefetchPlan::build(
                &evaluator,
                &schedule,
                &Residency::new(),
                values.weight_candidates(),
            ))
        })
    });

    let mut residency: Residency = values
        .iter()
        .filter(|v| v.allocatable)
        .map(|v| v.id)
        .take(100)
        .collect();
    c.bench_function("algo/total_latency_eval", |b| {
        b.iter(|| black_box(evaluator.total_latency(&residency)))
    });
    c.bench_function("algo/gain_of_one_value", |b| {
        let target = [ValueId::Weight(
            graph.node_by_name("inception_b1/1x1").unwrap().id(),
        )];
        b.iter(|| black_box(evaluator.gain_of(&mut residency, &target)))
    });
    c.bench_function("algo/schedule_minimizing_liveness", |b| {
        b.iter(|| black_box(Schedule::minimizing_liveness(&graph)))
    });
    c.bench_function("algo/dram_transaction_stream_2000_chunks", |b| {
        b.iter(|| {
            black_box(lcmm_sim::dram::stream_efficiency(
                lcmm_sim::dram::DramTiming::ddr4_2400(),
                112,
                64 * 1024,
                2000,
            ))
        })
    });
    c.bench_function("algo/energy_estimate", |b| {
        let model = lcmm_core::energy::EnergyModel::default();
        b.iter(|| {
            black_box(lcmm_core::energy::estimate(
                &evaluator, &design, &residency, &model,
            ))
        })
    });
}

fn main() {
    let mut c = lcmm_bench::criterion_micro();
    bench(&mut c);
    c.final_summary();
}
