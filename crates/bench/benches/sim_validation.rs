//! A3: analytic model vs event-driven simulator across the suite.

use criterion::{black_box, BenchmarkId, Criterion};
use lcmm_core::pipeline::compare;
use lcmm_core::Residency;
use lcmm_fpga::{Device, Precision};
use lcmm_sim::validate::validate;
use lcmm_sim::{SimConfig, Simulator};

fn print_table_once() {
    let device = Device::vu9p();
    println!("[A3] benchmark        UMM sim/model  LCMM sim/model  sim speedup");
    for graph in lcmm_graph::zoo::benchmark_suite() {
        let (umm, lcmm) = compare(&graph, &device, Precision::Fix16);
        let v = validate(&graph, &umm, &lcmm);
        println!(
            "[A3] {:14} {:13.3} {:15.3} {:11.2}x",
            graph.name(),
            v.umm.ratio(),
            v.lcmm.ratio(),
            v.umm.simulated / v.lcmm.simulated
        );
    }
}

fn bench(c: &mut Criterion) {
    print_table_once();
    let device = Device::vu9p();
    let mut group = c.benchmark_group("sim");
    for graph in lcmm_graph::zoo::benchmark_suite() {
        let umm = lcmm_core::UmmBaseline::build(&graph, &device, Precision::Fix16);
        group.bench_with_input(
            BenchmarkId::new("umm_inference", graph.name()),
            &graph,
            |b, g| {
                let sim = Simulator::new(g, &umm.profile);
                b.iter(|| black_box(sim.run(&Residency::new(), &SimConfig::default())))
            },
        );
    }
    group.finish();
}

fn main() {
    let mut c = lcmm_bench::criterion_heavy();
    bench(&mut c);
    c.final_summary();
}
