//! Fig. 3: memory-footprint trace of inception_c1 under UMM vs LCMM.

use criterion::{black_box, Criterion};
use lcmm_core::pipeline::compare;
use lcmm_core::prefetch::PrefetchPlan;
use lcmm_core::Residency;
use lcmm_fpga::{Device, Precision};
use lcmm_sim::trace::Footprint;
use lcmm_sim::{SimConfig, Simulator};

fn bench(c: &mut Criterion) {
    let graph = lcmm_graph::zoo::inception_v4();
    let device = Device::vu9p();
    let (umm, lcmm) = compare(&graph, &device, Precision::Fix16);
    let focus = graph.block_nodes("inception_c1");

    // Print the figure's punchline once.
    let lcmm_profile = lcmm.design.profile(&graph);
    let config = SimConfig::default().with_prefetch(lcmm.prefetch.clone());
    let lcmm_report = Simulator::new(&graph, &lcmm_profile).run(&lcmm.residency, &config);
    let fp = Footprint::build(
        &graph,
        &lcmm_report,
        &lcmm.residency,
        &lcmm.prefetch,
        &focus,
    );
    println!(
        "[fig3] inception_c1: LCMM keeps {} of {} tensors on chip (UMM: 0); peak {:.0} KiB",
        fp.on_chip_rows().len(),
        fp.rows.len(),
        fp.peak_on_chip_bytes() as f64 / 1024.0
    );

    let umm_sim = Simulator::new(&graph, &umm.profile);
    c.bench_function("fig3/simulate_umm_inception_v4", |b| {
        b.iter(|| black_box(umm_sim.run(&Residency::new(), &SimConfig::default())))
    });
    c.bench_function("fig3/footprint_build", |b| {
        b.iter(|| {
            black_box(Footprint::build(
                &graph,
                &lcmm_report,
                &lcmm.residency,
                &lcmm.prefetch,
                &focus,
            ))
        })
    });
    let _ = PrefetchPlan::default();
}

fn main() {
    let mut c = lcmm_bench::criterion_heavy();
    bench(&mut c);
    c.final_summary();
}
