//! Delta-replan speedup on the multi-tenant share-grid search, plus
//! the CI delta-budget gate.
//!
//! Three modes, selected by the arguments after `--`:
//!
//! ```text
//! cargo bench -p lcmm-bench --bench delta_replan                    # criterion benches
//! cargo bench -p lcmm-bench --bench delta_replan -- --check         # budget gate
//! cargo bench -p lcmm-bench --bench delta_replan -- --write-budgets # refresh budgets
//! ```
//!
//! The gate measures two workloads, taking the minimum wall clock per
//! mode across [`GATE_RUNS`] interleaved repetitions:
//!
//! - **Absolute**: the `mobilenet,alexnet` search at 8 grid steps in
//!   delta mode must finish within `delta_budget_seconds`
//!   (machine-dependent, written with [`HEADROOM`]). The budget sits
//!   well below the pre-delta cost of this exact command (~21 ms
//!   in-process on the reference machine vs ~5 ms now, a >4× speedup
//!   from the capacity-DP shortcuts plus replay-only finalisation), so
//!   a regression back to pre-delta per-grid-point costs fails CI.
//! - **Ratio** (machine-independent): on the 3-tenant
//!   `mobilenet,alexnet,squeezenet` search at 12 grid steps, the
//!   scratch/delta wall-clock ratio must stay above `min_speedup`.
//!   With 3 tenants the same device slice sizes recur across the 55
//!   grid points, so cached pass 1–2 artifacts and memoised gain
//!   curves are re-hit across points — the mechanism this PR adds. If
//!   delta replanning silently degraded into re-running passes 1–2 and
//!   the DNNK curve per grid point, the ratio falls to ~1 and CI
//!   fails. (With 2 tenants every grid point partitions the device
//!   uniquely, so there is nothing to re-hit and the two modes are at
//!   parity by construction — which is why the ratio gate runs the
//!   3-tenant workload.)

use criterion::{black_box, Criterion};
use lcmm_core::{Harness, LcmmOptions, PlanArtifacts, PlanRequest};
use lcmm_fpga::{AccelDesign, Device, Precision};
use lcmm_multi::{coplan, CoplanOptions, TenantSpec};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// Search repetitions per mode; the minimum is compared.
const GATE_RUNS: usize = 5;
/// Absolute budget = measured delta minimum × this. Chosen so the
/// budget still sits below the pre-delta cost of the same search: the
/// gate catches a return to pre-delta per-grid-point work even on a
/// machine ~30% slower than the one that wrote the budgets.
const HEADROOM: f64 = 3.0;
/// The speedup floor written by `--write-budgets`:
/// `max(measured_ratio / RATIO_HEADROOM, MIN_SPEEDUP_FLOOR)`.
const RATIO_HEADROOM: f64 = 1.3;
/// The ratio gate's lower bound: reuse must never make delta *slower*
/// than scratch on the workload built to exercise it.
const MIN_SPEEDUP_FLOOR: f64 = 1.05;

/// On-disk format of `checks/delta_budgets.json`.
#[derive(Debug, Serialize, Deserialize)]
struct DeltaBudgets {
    absolute_workload: String,
    ratio_workload: String,
    runs: usize,
    headroom: f64,
    /// Absolute wall-clock budget for the delta-mode 2-tenant search,
    /// seconds.
    delta_budget_seconds: f64,
    /// Machine-independent floor on `scratch / delta` wall clock of
    /// the 3-tenant search.
    min_speedup: f64,
}

/// The absolute gate's workload: the issue's flagship command,
/// `lcmm multi --models mobilenet,alexnet --steps 8 --jobs 1`.
fn two_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("mobilenet", lcmm_graph::zoo::mobilenet(), Precision::Fix16),
        TenantSpec::new("alexnet", lcmm_graph::zoo::alexnet(), Precision::Fix16),
    ]
}

/// The ratio gate's workload: 3 tenants × 12 steps = 55 grid points
/// with heavily repeated per-tenant slice sizes.
fn three_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("mobilenet", lcmm_graph::zoo::mobilenet(), Precision::Fix16),
        TenantSpec::new("alexnet", lcmm_graph::zoo::alexnet(), Precision::Fix16),
        TenantSpec::new(
            "squeezenet",
            lcmm_graph::zoo::squeezenet(),
            Precision::Fix16,
        ),
    ]
}

/// One timed share-grid search on a fresh single-job harness.
fn search_seconds(tenants: &[TenantSpec], steps: usize, delta: bool) -> f64 {
    let device = Device::vu9p();
    let harness = Harness::new(1);
    let opts = CoplanOptions::default()
        .with_search_steps(steps)
        .with_delta_replan(delta);
    let t = Instant::now();
    let plan = coplan(&harness, &device, tenants, &opts).expect("search finds a split");
    let elapsed = t.elapsed().as_secs_f64();
    black_box(plan);
    elapsed
}

/// Minimum wall clock of each mode over [`GATE_RUNS`] repetitions,
/// interleaved so drift hits both modes alike: `(delta, scratch)`.
fn measure(tenants: &[TenantSpec], steps: usize) -> (f64, f64) {
    let mut delta = f64::INFINITY;
    let mut scratch = f64::INFINITY;
    for _ in 0..GATE_RUNS {
        delta = delta.min(search_seconds(tenants, steps, true));
        scratch = scratch.min(search_seconds(tenants, steps, false));
    }
    (delta, scratch)
}

fn budgets_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../checks/delta_budgets.json")
}

fn write_budgets() {
    let (delta2, scratch2) = measure(&two_tenants(), 8);
    let (delta3, scratch3) = measure(&three_tenants(), 12);
    let ratio = scratch3 / delta3;
    let out = DeltaBudgets {
        absolute_workload: "coplan mobilenet,alexnet on vu9p Fix16, 8 steps".to_string(),
        ratio_workload: "coplan mobilenet,alexnet,squeezenet on vu9p Fix16, 12 steps".to_string(),
        runs: GATE_RUNS,
        headroom: HEADROOM,
        delta_budget_seconds: delta2 * HEADROOM,
        min_speedup: (ratio / RATIO_HEADROOM).max(MIN_SPEEDUP_FLOOR),
    };
    let path = budgets_path();
    let json = serde_json::to_string_pretty(&out).expect("budgets serialise");
    std::fs::write(&path, json + "\n").expect("write delta_budgets.json");
    println!("wrote {}", path.display());
    println!(
        "  2-tenant delta {delta2:>9.6}s (scratch {scratch2:>9.6}s)  budget {:>9.6}s",
        out.delta_budget_seconds
    );
    println!(
        "  3-tenant delta {delta3:>9.6}s (scratch {scratch3:>9.6}s)  speedup {ratio:>6.3}x  floor {:>6.3}x",
        out.min_speedup
    );
}

fn check_budgets() {
    let path = budgets_path();
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!(
            "cannot read {}: {e}\nrun `cargo bench -p lcmm-bench --bench delta_replan -- --write-budgets` first",
            path.display()
        );
        std::process::exit(1);
    });
    let budgets: DeltaBudgets = serde_json::from_str(&raw).expect("delta_budgets.json parses");
    let (delta2, _) = measure(&two_tenants(), 8);
    let (delta3, scratch3) = measure(&three_tenants(), 12);
    let ratio = scratch3 / delta3;
    let abs_ok = delta2 <= budgets.delta_budget_seconds;
    let ratio_ok = ratio >= budgets.min_speedup;
    println!("delta replan gate ({GATE_RUNS} runs, min):");
    println!(
        "  {}: {delta2:>9.6}s  budget {:>9.6}s  {}",
        budgets.absolute_workload,
        budgets.delta_budget_seconds,
        if abs_ok { "ok" } else { "FAIL" }
    );
    println!(
        "  {}: {ratio:>6.3}x  floor {:>6.3}x  {}",
        budgets.ratio_workload,
        budgets.min_speedup,
        if ratio_ok { "ok" } else { "FAIL" }
    );
    if !abs_ok || !ratio_ok {
        eprintln!("delta replan regressed — artifact reuse no longer pays for itself");
        std::process::exit(1);
    }
    println!("delta replan ok.");
}

/// Criterion benches: both searches in both modes, and the raw
/// single-model budget replay against a from-scratch plan.
fn bench(c: &mut Criterion) {
    let device = Device::vu9p();

    c.bench_function("delta/search_2x8_delta", |b| {
        b.iter(|| black_box(search_seconds(&two_tenants(), 8, true)))
    });
    c.bench_function("delta/search_2x8_scratch", |b| {
        b.iter(|| black_box(search_seconds(&two_tenants(), 8, false)))
    });
    c.bench_function("delta/search_3x12_delta", |b| {
        b.iter(|| black_box(search_seconds(&three_tenants(), 12, true)))
    });
    c.bench_function("delta/search_3x12_scratch", |b| {
        b.iter(|| black_box(search_seconds(&three_tenants(), 12, false)))
    });

    let graph = lcmm_graph::zoo::alexnet();
    let base = AccelDesign::explore(&graph, &device, Precision::Fix16);
    let artifacts = PlanArtifacts::build(&graph, base.clone(), LcmmOptions::default(), None)
        .expect("alexnet front end builds");
    let budget = Some(artifacts.design().tensor_sram_budget() / 2);
    c.bench_function("delta/replan_alexnet_half_budget", |b| {
        b.iter(|| black_box(artifacts.replan_with_budget(&graph, budget, None).unwrap()))
    });
    c.bench_function("delta/scratch_alexnet_half_budget", |b| {
        b.iter(|| {
            black_box(
                PlanRequest::new(&graph, &device, Precision::Fix16)
                    .options(LcmmOptions::default().with_tensor_budget(budget))
                    .with_design(base.clone())
                    .run()
                    .unwrap(),
            )
        })
    });
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--write-budgets") {
        write_budgets();
        return;
    }
    if args.iter().any(|a| a == "--check") {
        check_budgets();
        return;
    }
    let mut c = lcmm_bench::criterion_heavy();
    bench(&mut c);
    c.final_summary();
}
