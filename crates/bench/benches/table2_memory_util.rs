//! Table 2: on-chip memory utilisation and the POL metric.

use criterion::{black_box, Criterion};
use lcmm_core::pipeline::compare;
use lcmm_core::PlanRequest;
use lcmm_core::UmmBaseline;
use lcmm_fpga::{Device, Precision};

fn print_table_once() {
    let device = Device::vu9p();
    println!("[table2] benchmark        prec    UMM BRAM/URAM %  LCMM BRAM/URAM %  POL %");
    for graph in lcmm_graph::zoo::benchmark_suite() {
        for precision in Precision::ALL {
            let (umm, lcmm) = compare(&graph, &device, precision);
            println!(
                "[table2] {:14} {:7} {:8.0} {:6.0} {:10.0} {:6.0} {:8.0}",
                graph.name(),
                precision.label(),
                umm.resources.bram_util * 100.0,
                umm.resources.uram_util * 100.0,
                lcmm.resources.bram_util * 100.0,
                lcmm.resources.uram_util * 100.0,
                lcmm.pol() * 100.0
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    print_table_once();
    let device = Device::vu9p();
    let graph = lcmm_graph::zoo::resnet152();
    let umm = UmmBaseline::build(&graph, &device, Precision::Fix16);
    c.bench_function("table2/lcmm_pipeline_resnet152_16bit", |b| {
        b.iter(|| {
            black_box(
                PlanRequest::new(&graph, &device, Precision::Fix16)
                    .with_design(umm.design.clone())
                    .run()
                    .expect("explored design is feasible"),
            )
        })
    });
}

fn main() {
    let mut c = lcmm_bench::criterion_heavy();
    bench(&mut c);
    c.final_summary();
}
