//! Multi-tenant co-planning cost: one explicit split of two networks,
//! and the full share-grid search — the price of the second-level
//! capacity DP plus per-tenant finalisation on top of single-model
//! planning.

use criterion::{black_box, Criterion};
use lcmm_core::Harness;
use lcmm_fpga::{Device, Precision};
use lcmm_multi::{coplan, share_grid, CoplanOptions, TenantSpec};

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("mobilenet", lcmm_graph::zoo::mobilenet(), Precision::Fix16),
        TenantSpec::new("alexnet", lcmm_graph::zoo::alexnet(), Precision::Fix16),
    ]
}

fn bench(c: &mut Criterion) {
    let device = Device::vu9p();

    c.bench_function("multi/share_grid_4_tenants_16_steps", |b| {
        b.iter(|| black_box(share_grid(4, 16)))
    });

    c.bench_function("multi/explicit_split_mobilenet_alexnet", |b| {
        // A fresh harness per iteration: measure the real planning cost,
        // not a memoized replay.
        b.iter(|| {
            let harness = Harness::new(1);
            let tenants: Vec<TenantSpec> =
                tenants().into_iter().map(|t| t.with_share(0.5)).collect();
            black_box(
                coplan(&harness, &device, &tenants, &CoplanOptions::default())
                    .expect("half-and-half fits"),
            )
        })
    });

    c.bench_function("multi/search_4_steps_mobilenet_alexnet", |b| {
        b.iter(|| {
            let harness = Harness::new(1);
            let opts = CoplanOptions::default().with_search_steps(4);
            black_box(coplan(&harness, &device, &tenants(), &opts).expect("search finds a split"))
        })
    });
}

fn main() {
    let mut c = lcmm_bench::criterion_micro();
    bench(&mut c);
    c.final_summary();
}
