//! Fig. 8: GoogLeNet 16-bit per-block analysis of feature reuse (a),
//! weight prefetching (b) and their combination (c).

use criterion::{black_box, BenchmarkId, Criterion};
use lcmm_core::pipeline::{block_latency, block_ops};
use lcmm_core::{Evaluator, LcmmOptions, PlanRequest, Residency, UmmBaseline};
use lcmm_fpga::{Device, Precision};

fn print_series_once() {
    let graph = lcmm_graph::zoo::googlenet();
    let device = Device::vu9p();
    let umm = UmmBaseline::build(&graph, &device, Precision::Fix16);
    let umm_eval = Evaluator::new(&graph, &umm.profile);
    let variants = [
        ("feature_reuse", LcmmOptions::feature_reuse_only()),
        ("wt_prefetch", LcmmOptions::weight_prefetch_only()),
        ("full_lcmm", LcmmOptions::default()),
    ];
    let results: Vec<_> = variants
        .iter()
        .map(|(_, o)| {
            PlanRequest::new(&graph, &device, Precision::Fix16)
                .options(*o)
                .with_design(umm.design.clone())
                .run()
                .expect("explored design is feasible")
        })
        .collect();
    println!("[fig8] block          UMM  feat   wtpf   full   (Gops)");
    for block in graph.blocks().iter().filter(|b| b.starts_with("inception")) {
        let ops = block_ops(&graph, block) as f64;
        let umm_gops = ops / block_latency(&graph, &umm_eval, &Residency::new(), block) / 1e9;
        let mut row = format!("[fig8] {block:14} {umm_gops:5.0}");
        for r in &results {
            let profile = r.design.profile(&graph);
            let ev = Evaluator::new(&graph, &profile);
            let gops = ops / block_latency(&graph, &ev, &r.residency, block) / 1e9;
            row.push_str(&format!(" {gops:6.0}"));
        }
        println!("{row}");
    }
}

fn bench(c: &mut Criterion) {
    print_series_once();
    let graph = lcmm_graph::zoo::googlenet();
    let device = Device::vu9p();
    let umm = UmmBaseline::build(&graph, &device, Precision::Fix16);
    let mut group = c.benchmark_group("fig8");
    for (name, opts) in [
        ("feature_reuse_only", LcmmOptions::feature_reuse_only()),
        ("weight_prefetch_only", LcmmOptions::weight_prefetch_only()),
        ("full_lcmm", LcmmOptions::default()),
    ] {
        group.bench_with_input(BenchmarkId::new("pipeline", name), &opts, |b, o| {
            b.iter(|| {
                black_box(
                    PlanRequest::new(&graph, &device, Precision::Fix16)
                        .options(*o)
                        .with_design(umm.design.clone())
                        .run()
                        .expect("explored design is feasible"),
                )
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = lcmm_bench::criterion_heavy();
    bench(&mut c);
    c.final_summary();
}
