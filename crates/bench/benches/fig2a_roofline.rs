//! Fig. 2(a): roofline characterisation of Inception-v4 at 8-bit.

use criterion::{black_box, Criterion};
use lcmm_fpga::roofline::RooflineReport;
use lcmm_fpga::{AccelDesign, Device, Precision};

fn print_series_once() {
    let graph = lcmm_graph::zoo::inception_v4();
    let design = AccelDesign::explore(&graph, &Device::vu9p(), Precision::Fix8);
    let report = RooflineReport::build(&graph, &design);
    println!(
        "[fig2a] inception_v4 8-bit: {} of {} layers memory bound ({:.0}%); \
         {:.0}% of those need >2x interface bandwidth",
        report.memory_bound_count(),
        report.points.len(),
        report.memory_bound_fraction() * 100.0,
        report.fraction_needing_bandwidth(2.0 * report.interface_bandwidth) * 100.0
    );
}

fn bench(c: &mut Criterion) {
    print_series_once();
    let graph = lcmm_graph::zoo::inception_v4();
    let device = Device::vu9p();
    let design = AccelDesign::explore(&graph, &device, Precision::Fix8);
    c.bench_function("fig2a/roofline_inception_v4_8bit", |b| {
        b.iter(|| black_box(RooflineReport::build(&graph, &design)))
    });
    c.bench_function("fig2a/design_exploration", |b| {
        b.iter(|| black_box(AccelDesign::explore(&graph, &device, Precision::Fix8)))
    });
}

fn main() {
    let mut c = lcmm_bench::criterion_heavy();
    bench(&mut c);
    c.final_summary();
}
