//! Table 1: UMM vs LCMM across the benchmark suite and precisions.

use criterion::{black_box, BenchmarkId, Criterion};
use lcmm_core::pipeline::compare;
use lcmm_fpga::{Device, Precision};

fn print_table_once() {
    let device = Device::vu9p();
    let mut speedups = Vec::new();
    println!("[table1] benchmark        prec    UMM ms   LCMM ms  speedup");
    for graph in lcmm_graph::zoo::benchmark_suite() {
        for precision in Precision::ALL {
            let (umm, lcmm) = compare(&graph, &device, precision);
            let s = lcmm.speedup_over(umm.latency);
            speedups.push(s);
            println!(
                "[table1] {:14} {:7} {:8.3} {:9.3} {:7.2}x",
                graph.name(),
                precision.label(),
                umm.latency * 1e3,
                lcmm.latency * 1e3,
                s
            );
        }
    }
    println!(
        "[table1] average speedup {:.2}x (paper: 1.36x)",
        speedups.iter().sum::<f64>() / speedups.len() as f64
    );
}

fn bench(c: &mut Criterion) {
    print_table_once();
    let device = Device::vu9p();
    let mut group = c.benchmark_group("table1");
    for graph in lcmm_graph::zoo::benchmark_suite() {
        group.bench_with_input(
            BenchmarkId::new("umm_vs_lcmm_16bit", graph.name()),
            &graph,
            |b, g| b.iter(|| black_box(compare(g, &device, Precision::Fix16))),
        );
    }
    group.finish();
}

fn main() {
    let mut c = lcmm_bench::criterion_heavy();
    bench(&mut c);
    c.final_summary();
}
