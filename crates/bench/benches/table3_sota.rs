//! Table 3: LCMM vs the Cloud-DNN and TGPA strategy analogues.

use criterion::{black_box, Criterion};
use lcmm_core::pipeline::compare;
use lcmm_core::strategies::{cloud_dnn_like, tgpa_like};
use lcmm_fpga::{Device, Precision};

fn print_table_once() {
    let device = Device::vu9p();
    let rn50 = lcmm_graph::zoo::resnet50();
    let cloud = cloud_dnn_like(&rn50, &device, Precision::Fix16);
    let (_, lcmm50) = compare(&rn50, &device, Precision::Fix16);
    println!(
        "[table3] resnet50 16-bit: LCMM {:.3} Tops vs cloud-dnn-like {:.3} Tops ({:.2}x; paper 1.35x)",
        lcmm50.throughput_ops() / 1e12,
        cloud.throughput_ops() / 1e12,
        lcmm50.throughput_ops() / cloud.throughput_ops()
    );
    let rn152 = lcmm_graph::zoo::resnet152();
    let tgpa = tgpa_like(&rn152, &device, Precision::Fix16);
    let (_, lcmm152) = compare(&rn152, &device, Precision::Fix16);
    println!(
        "[table3] resnet152 16-bit: LCMM {:.3} Tops vs tgpa-like {:.3} Tops ({:.2}x; paper 1.12x)",
        lcmm152.throughput_ops() / 1e12,
        tgpa.throughput_ops() / 1e12,
        lcmm152.throughput_ops() / tgpa.throughput_ops()
    );
}

fn bench(c: &mut Criterion) {
    print_table_once();
    let device = Device::vu9p();
    let rn50 = lcmm_graph::zoo::resnet50();
    c.bench_function("table3/cloud_dnn_like_resnet50", |b| {
        b.iter(|| black_box(cloud_dnn_like(&rn50, &device, Precision::Fix16)))
    });
    let rn152 = lcmm_graph::zoo::resnet152();
    c.bench_function("table3/tgpa_like_resnet152", |b| {
        b.iter(|| black_box(tgpa_like(&rn152, &device, Precision::Fix16)))
    });
}

fn main() {
    let mut c = lcmm_bench::criterion_heavy();
    bench(&mut c);
    c.final_summary();
}
