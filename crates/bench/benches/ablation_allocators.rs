//! A1: DNNK vs greedy vs exhaustive allocation quality and speed.

use criterion::{black_box, Criterion};
use lcmm_core::alloc::{dnnk, exhaustive, greedy, AllocProblem};
use lcmm_core::interference::VirtualBuffer;
use lcmm_core::prefetch::PrefetchPlan;
use lcmm_core::{Evaluator, ValueId};
use lcmm_fpga::{AccelDesign, Device, GraphProfile, Precision};
use lcmm_graph::{ConvParams, FeatureShape, Graph, GraphBuilder};

/// A weight-bound pointwise chain sized for exhaustive enumeration.
fn small_graph() -> Graph {
    let mut b = GraphBuilder::new("alloc_bench");
    let mut cur = b.input(FeatureShape::new(512, 7, 7)).expect("input");
    for (i, out) in [512usize, 640, 768, 512, 640, 768, 896, 512]
        .iter()
        .enumerate()
    {
        cur = b
            .conv(format!("c{i}"), cur, ConvParams::pointwise(*out))
            .expect("valid");
    }
    b.finish(cur).expect("valid")
}

fn singleton_buffers(graph: &Graph) -> Vec<VirtualBuffer> {
    graph
        .conv_layers()
        .flat_map(|n| {
            [
                VirtualBuffer {
                    members: vec![ValueId::Weight(n.id())],
                    bytes: graph.node_weight_elems(n.id()) * 2,
                },
                VirtualBuffer {
                    members: vec![ValueId::Feature(n.id())],
                    bytes: n.output_shape().elems() * 2,
                },
            ]
        })
        .collect()
}

fn profile_of(graph: &Graph) -> GraphProfile {
    AccelDesign::explore(graph, &Device::vu9p(), Precision::Fix16).profile(graph)
}

fn print_quality_once() {
    let graph = small_graph();
    let profile = profile_of(&graph);
    let evaluator = Evaluator::new(&graph, &profile);
    let buffers = singleton_buffers(&graph);
    let plan = PrefetchPlan::default();
    let budget = 3u64 << 20;
    let problem = AllocProblem::new(&evaluator, &buffers, budget, &plan);
    let umm = problem.latency_of(&vec![false; buffers.len()]);
    let exact = exhaustive::allocate(&problem);
    let dn = dnnk::allocate(&problem);
    let gr = greedy::allocate(&problem);
    println!(
        "[A1] 16-buffer chain, 3 MiB budget: UMM {:.3} ms | exhaustive {:.3} | DNNK {:.3} | greedy {:.3}",
        umm * 1e3,
        exact.latency * 1e3,
        dn.latency * 1e3,
        gr.latency * 1e3
    );
    println!(
        "[A1] gain recovered: DNNK {:.0}%, greedy {:.0}% of exhaustive",
        (umm - dn.latency) / (umm - exact.latency) * 100.0,
        (umm - gr.latency) / (umm - exact.latency) * 100.0
    );
}

fn bench(c: &mut Criterion) {
    print_quality_once();
    let graph = small_graph();
    let profile = profile_of(&graph);
    let evaluator = Evaluator::new(&graph, &profile);
    let buffers = singleton_buffers(&graph);
    let plan = PrefetchPlan::default();
    let budget = 3u64 << 20;
    let problem = AllocProblem::new(&evaluator, &buffers, budget, &plan);

    c.bench_function("alloc/dnnk_16_buffers", |b| {
        b.iter(|| black_box(dnnk::allocate(&problem)))
    });
    c.bench_function("alloc/greedy_16_buffers", |b| {
        b.iter(|| black_box(greedy::allocate(&problem)))
    });
    c.bench_function("alloc/exhaustive_16_buffers", |b| {
        b.iter(|| black_box(exhaustive::allocate(&problem)))
    });

    // DNNK at full Inception-v4 scale.
    let big = lcmm_graph::zoo::inception_v4();
    let big_profile = profile_of(&big);
    let big_eval = Evaluator::new(&big, &big_profile);
    let big_buffers: Vec<VirtualBuffer> = big
        .conv_layers()
        .map(|n| VirtualBuffer {
            members: vec![ValueId::Weight(n.id())],
            bytes: big.node_weight_elems(n.id()) * 2,
        })
        .collect();
    let big_problem = AllocProblem::new(&big_eval, &big_buffers, 30 << 20, &plan);
    c.bench_function("alloc/dnnk_149_buffers_inception_v4", |b| {
        b.iter(|| black_box(dnnk::allocate(&big_problem)))
    });
}

fn main() {
    let mut c = lcmm_bench::criterion_micro();
    bench(&mut c);
    c.final_summary();
}
