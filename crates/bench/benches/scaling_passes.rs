//! Pass scaling on thousand-node synthetic graphs, plus the CI
//! pass-budget gate.
//!
//! Three modes, selected by the arguments after `--`:
//!
//! ```text
//! cargo bench -p lcmm-bench --bench scaling_passes                    # criterion benches
//! cargo bench -p lcmm-bench --bench scaling_passes -- --check         # budget gate
//! cargo bench -p lcmm-bench --bench scaling_passes -- --write-budgets # refresh budgets
//! ```
//!
//! The gate runs the full pipeline on `synthetic(1024, 4, 7)` at Fix16
//! a few times, takes the per-pass minimum of the `PassStats` wall
//! clocks (minimum across runs is the noise-robust statistic for a
//! lower-bounded measurement), and fails if any pass exceeds its
//! budget in `checks/pass_budgets.json`. Budgets are written by
//! `--write-budgets` as `max(measured_min × HEADROOM, FLOOR)`: loose
//! enough that machine noise never trips the gate, tight enough that a
//! return to the pre-interval-index quadratic costs (3–8× on every
//! pass at this depth) fails CI immediately.

use criterion::{black_box, Criterion};
use lcmm_core::interference::InterferenceGraph;
use lcmm_core::liveness::{feature_lifespans, Schedule};
use lcmm_core::value::ValueTable;
use lcmm_core::{PassStats, PlanRequest};
use lcmm_fpga::{AccelDesign, Device, Precision};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// The gate's workload: `zoo::synthetic(DEPTH, BRANCHING, SEED)`.
const GATE_GRAPH: (usize, usize, u64) = (1024, 4, 7);
/// Pipeline runs per measurement; the per-pass minimum is compared.
const GATE_RUNS: usize = 5;
/// Budget = measured minimum × this, floored at [`BUDGET_FLOOR_SECONDS`].
const HEADROOM: f64 = 4.0;
/// No pass budget below 1 ms: sub-millisecond passes are pure noise
/// territory, and every historical regression worth catching crossed
/// this line by an order of magnitude.
const BUDGET_FLOOR_SECONDS: f64 = 0.001;

/// On-disk format of `checks/pass_budgets.json`.
#[derive(Debug, Serialize, Deserialize)]
struct PassBudgets {
    graph: String,
    precision: String,
    runs: usize,
    headroom: f64,
    budgets_seconds: Budgets,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Budgets {
    profile: f64,
    liveness: f64,
    prefetch: f64,
    alloc_split: f64,
    coloring: f64,
    reporting: f64,
    total: f64,
}

impl Budgets {
    fn from_stats(s: &PassStats) -> Self {
        Self {
            profile: s.profile_seconds,
            liveness: s.liveness_seconds,
            prefetch: s.prefetch_seconds,
            alloc_split: s.alloc_split_seconds,
            coloring: s.coloring_seconds,
            reporting: s.reporting_seconds,
            total: s.total_seconds,
        }
    }

    fn min(&self, other: &Self) -> Self {
        Self {
            profile: self.profile.min(other.profile),
            liveness: self.liveness.min(other.liveness),
            prefetch: self.prefetch.min(other.prefetch),
            alloc_split: self.alloc_split.min(other.alloc_split),
            coloring: self.coloring.min(other.coloring),
            reporting: self.reporting.min(other.reporting),
            total: self.total.min(other.total),
        }
    }

    fn fields(&self) -> [(&'static str, f64); 7] {
        [
            ("profile", self.profile),
            ("liveness", self.liveness),
            ("prefetch", self.prefetch),
            ("alloc_split", self.alloc_split),
            ("coloring", self.coloring),
            ("reporting", self.reporting),
            ("total", self.total),
        ]
    }
}

fn gate_pipeline_stats() -> PassStats {
    let (depth, branching, seed) = GATE_GRAPH;
    let graph = lcmm_graph::zoo::synthetic(depth, branching, seed);
    let device = Device::vu9p();
    let design = AccelDesign::explore(&graph, &device, Precision::Fix16);
    PlanRequest::new(&graph, &device, Precision::Fix16)
        .with_design(design)
        .run()
        .expect("explored design is feasible")
        .stats
}

/// Per-pass minimum over [`GATE_RUNS`] pipeline executions.
fn measure() -> Budgets {
    let mut best = Budgets::from_stats(&gate_pipeline_stats());
    for _ in 1..GATE_RUNS {
        best = best.min(&Budgets::from_stats(&gate_pipeline_stats()));
    }
    best
}

fn budgets_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../checks/pass_budgets.json")
}

fn write_budgets() {
    let measured = measure();
    let mut b = measured;
    for field in [
        &mut b.profile,
        &mut b.liveness,
        &mut b.prefetch,
        &mut b.alloc_split,
        &mut b.coloring,
        &mut b.reporting,
        &mut b.total,
    ] {
        *field = (*field * HEADROOM).max(BUDGET_FLOOR_SECONDS);
    }
    let (depth, branching, seed) = GATE_GRAPH;
    let out = PassBudgets {
        graph: format!("synthetic_{depth}x{branching}x{seed}"),
        precision: "Fix16".to_string(),
        runs: GATE_RUNS,
        headroom: HEADROOM,
        budgets_seconds: b,
    };
    let path = budgets_path();
    let json = serde_json::to_string_pretty(&out).expect("budgets serialise");
    std::fs::write(&path, json + "\n").expect("write pass_budgets.json");
    println!("wrote {}", path.display());
    for ((name, m), (_, budget)) in measured.fields().into_iter().zip(b.fields()) {
        println!("  {name:<12} measured {m:>9.6}s  budget {budget:>9.6}s");
    }
}

fn check_budgets() {
    let path = budgets_path();
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!(
            "cannot read {}: {e}\nrun `cargo bench -p lcmm-bench --bench scaling_passes -- --write-budgets` first",
            path.display()
        );
        std::process::exit(1);
    });
    let budgets: PassBudgets = serde_json::from_str(&raw).expect("pass_budgets.json parses");
    let measured = measure();
    let mut failed = false;
    println!(
        "pass budgets on {} ({} runs, min):",
        budgets.graph, GATE_RUNS
    );
    for ((name, m), (_, budget)) in measured
        .fields()
        .into_iter()
        .zip(budgets.budgets_seconds.fields())
    {
        let verdict = if m > budget {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!("  {name:<12} {m:>9.6}s  budget {budget:>9.6}s  {verdict}");
    }
    if failed {
        eprintln!("pass budget exceeded — a pass regressed on thousand-node graphs");
        std::process::exit(1);
    }
    println!("pass budgets ok.");
}

/// Criterion benches: the gate pipeline end to end at two depths, and
/// the interval-indexed pass implementations against their pairwise
/// references, so `cargo bench` shows the scaling gap directly.
fn bench(c: &mut Criterion) {
    let device = Device::vu9p();
    for depth in [256usize, 1024] {
        let graph = lcmm_graph::zoo::synthetic(depth, 4, 7);
        let design = AccelDesign::explore(&graph, &device, Precision::Fix16);
        c.bench_function(&format!("scaling/pipeline_synthetic_{depth}"), |b| {
            b.iter(|| {
                black_box(
                    PlanRequest::new(&graph, &device, Precision::Fix16)
                        .with_design(design.clone())
                        .run()
                        .expect("explored design is feasible"),
                )
            })
        });
    }

    let (depth, branching, seed) = GATE_GRAPH;
    let graph = lcmm_graph::zoo::synthetic(depth, branching, seed);
    let design = AccelDesign::explore(&graph, &device, Precision::Fix16);
    let profile = design.profile(&graph);
    let values = ValueTable::build(&graph, &profile, Precision::Fix16);
    let schedule = Schedule::new(&graph);
    let spans = feature_lifespans(&schedule, values.iter());
    let items: Vec<_> = values
        .feature_candidates()
        .map(|v| (v.id, v.bytes, spans[&v.id]))
        .collect();
    let ig = InterferenceGraph::new(items);

    c.bench_function("scaling/color_indexed_1024", |b| {
        b.iter(|| black_box(ig.color()))
    });
    c.bench_function("scaling/color_reference_1024", |b| {
        b.iter(|| black_box(ig.color_reference()))
    });
    c.bench_function("scaling/chaitin_indexed_1024", |b| {
        b.iter(|| black_box(ig.color_chaitin()))
    });
    c.bench_function("scaling/chaitin_reference_1024", |b| {
        b.iter(|| black_box(ig.color_chaitin_reference()))
    });
    c.bench_function("scaling/minimizing_liveness_heap_1024", |b| {
        b.iter(|| black_box(Schedule::minimizing_liveness(&graph)))
    });
    c.bench_function("scaling/minimizing_liveness_reference_1024", |b| {
        b.iter(|| {
            black_box(Schedule::minimizing_liveness_reference(
                &graph,
                Precision::Fix16,
            ))
        })
    });
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--write-budgets") {
        write_budgets();
        return;
    }
    if args.iter().any(|a| a == "--check") {
        check_budgets();
        return;
    }
    let mut c = lcmm_bench::criterion_micro();
    bench(&mut c);
    c.final_summary();
}
