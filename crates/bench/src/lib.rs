//! Shared helpers for the benchmark suite.
//!
//! Every bench in `benches/` regenerates one table or figure of the
//! paper (printing the rows/series once) and then times the computation
//! that produces it, so `cargo bench` doubles as the experiment
//! harness' performance regression suite.

use criterion::Criterion;
use std::time::Duration;

/// Criterion tuned for heavyweight end-to-end benches: few samples,
/// short measurement windows, no plots.
#[must_use]
pub fn criterion_heavy() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500))
        .without_plots()
}

/// Criterion for microbenches of the core algorithms.
#[must_use]
pub fn criterion_micro() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .without_plots()
}
