//! The LRU plan cache.
//!
//! Keys are digests of the canonical JSON fingerprint of
//! `(graph, device, precision, options)` — computed by the server from
//! the *resolved* request, so `"googlenet"` and `"gn"` hit the same
//! entry. Values are **pre-serialized** plan JSON strings: a hit
//! replays the stored bytes verbatim, which is what makes duplicate
//! responses byte-identical regardless of when they were computed.

use crate::lock_safe;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Hit/miss/occupancy counters of the plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (plans actually computed).
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Maximum entries before LRU eviction.
    pub capacity: usize,
    /// Entries dropped by LRU eviction at capacity.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation (registry changes).
    pub invalidations: u64,
}

impl CacheCounters {
    /// `hits / (hits + misses)`, 0 when idle.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One stored plan: the serialized JSON, its recency stamp, and the
/// invalidation tags it carries (e.g. `model:<name>` for every tenant
/// of a co-plan).
struct Entry {
    value: String,
    stamp: u64,
    tags: Vec<String>,
}

/// A thread-safe LRU cache of pre-serialized plan JSON.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    map: Mutex<HashMap<String, Entry>>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry").field("stamp", &self.stamp).finish()
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (0 disables caching —
    /// every lookup misses).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<String> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = lock_safe(&self.map);
        match map.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `value` under `key`, evicting the least-recently-used
    /// entry when past capacity. Re-inserting an existing key only
    /// refreshes it (plan values for one key are deterministic).
    pub fn put(&self, key: String, value: String) {
        self.put_tagged(key, value, Vec::new());
    }

    /// [`PlanCache::put`] with invalidation tags: a later
    /// [`PlanCache::invalidate_tag`] with any of these tags drops the
    /// entry. The server tags each co-plan entry with `model:<name>`
    /// for every tenant, so a registry change evicts exactly the
    /// co-plans that inlined the mutated model.
    pub fn put_tagged(&self, key: String, value: String, tags: Vec<String>) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = lock_safe(&self.map);
        map.insert(key, Entry { value, stamp, tags });
        while map.len() > self.capacity {
            let Some(oldest) = map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops every entry whose key starts with `prefix` and returns how
    /// many were removed. The server invalidates `coplan:`-prefixed
    /// entries on registry changes; their keys also carry the registry
    /// digest, so this reclaims space rather than preventing stale hits.
    pub fn invalidate_prefix(&self, prefix: &str) -> usize {
        let mut map = lock_safe(&self.map);
        let stale: Vec<String> = map
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        for key in &stale {
            map.remove(key);
        }
        self.invalidations
            .fetch_add(stale.len() as u64, Ordering::Relaxed);
        stale.len()
    }

    /// Drops every entry carrying `tag` and returns how many were
    /// removed. Each dropped entry bumps the `invalidations` counter
    /// exactly once, however many tags it carried — the counter tracks
    /// evicted entries, not tag matches.
    pub fn invalidate_tag(&self, tag: &str) -> usize {
        let mut map = lock_safe(&self.map);
        let before = map.len();
        map.retain(|_, e| !e.tags.iter().any(|t| t == tag));
        let removed = before - map.len();
        self.invalidations
            .fetch_add(removed as u64, Ordering::Relaxed);
        removed
    }

    /// Dumps every entry as `(key, value, tags)` in LRU order (least
    /// recently used first). WAL compaction writes this as the
    /// snapshot; replaying it through [`PlanCache::replay_put`] in
    /// order reconstructs both the entry set and the relative recency.
    #[must_use]
    pub fn dump(&self) -> Vec<(String, String, Vec<String>)> {
        let map = lock_safe(&self.map);
        let mut entries: Vec<(&String, &Entry)> = map.iter().collect();
        entries.sort_by_key(|(_, e)| e.stamp);
        entries
            .into_iter()
            .map(|(k, e)| (k.clone(), e.value.clone(), e.tags.clone()))
            .collect()
    }

    /// [`PlanCache::put_tagged`] for WAL replay: identical storage
    /// semantics (LRU eviction included, so capacity shrinks across a
    /// restart are honoured) but without disturbing the hit/miss/
    /// eviction counters, which describe this process's traffic only.
    pub fn replay_put(&self, key: String, value: String, tags: Vec<String>) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = lock_safe(&self.map);
        map.insert(key, Entry { value, stamp, tags });
        while map.len() > self.capacity {
            let Some(oldest) = map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            map.remove(&oldest);
        }
    }

    /// [`PlanCache::invalidate_tag`] for WAL replay: drops the entries
    /// without bumping the `invalidations` counter.
    pub fn replay_invalidate_tag(&self, tag: &str) {
        let mut map = lock_safe(&self.map);
        map.retain(|_, e| !e.tags.iter().any(|t| t == tag));
    }

    /// Current counters.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: lock_safe(&self.map).len(),
            capacity: self.capacity,
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_stored_bytes_verbatim() {
        let c = PlanCache::new(4);
        assert_eq!(c.get("k"), None);
        c.put("k".to_string(), "{\"x\":1}".to_string());
        assert_eq!(c.get("k").as_deref(), Some("{\"x\":1}"));
        let s = c.counters();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = PlanCache::new(2);
        c.put("a".into(), "A".into());
        c.put("b".into(), "B".into());
        assert!(c.get("a").is_some()); // refresh a; b is now LRU
        c.put("c".into(), "C".into()); // evicts b
        assert!(c.get("b").is_none());
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        let s = c.counters();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.invalidations, 0);
    }

    #[test]
    fn prefix_invalidation_counts_and_spares_other_keys() {
        let c = PlanCache::new(8);
        c.put("coplan:x".into(), "X".into());
        c.put("coplan:y".into(), "Y".into());
        c.put("plan:z".into(), "Z".into());
        assert_eq!(c.invalidate_prefix("coplan:"), 2);
        assert!(c.get("coplan:x").is_none());
        assert!(c.get("plan:z").is_some());
        let s = c.counters();
        assert_eq!(s.invalidations, 2);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.entries, 1);
        // Idempotent: nothing left to drop.
        assert_eq!(c.invalidate_prefix("coplan:"), 0);
    }

    #[test]
    fn tag_invalidation_counts_each_entry_once() {
        let c = PlanCache::new(8);
        c.put_tagged(
            "coplan:ab".into(),
            "AB".into(),
            vec!["model:a".into(), "model:b".into()],
        );
        c.put_tagged("coplan:ac".into(), "AC".into(), vec!["model:a".into()]);
        c.put("plan:a".into(), "A".into());
        // Both coplan entries carry model:a; plan:a is untagged.
        assert_eq!(c.invalidate_tag("model:a"), 2);
        assert!(c.get("coplan:ab").is_none());
        assert!(c.get("coplan:ac").is_none());
        assert!(c.get("plan:a").is_some());
        let s = c.counters();
        assert_eq!(s.invalidations, 2, "one bump per dropped entry");
        // The multi-tag entry is gone; its second tag finds nothing, so
        // the counter must not move again.
        assert_eq!(c.invalidate_tag("model:b"), 0);
        assert_eq!(c.counters().invalidations, 2);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let c = PlanCache::new(0);
        c.put("k".into(), "V".into());
        assert_eq!(c.get("k"), None);
        assert_eq!(c.counters().entries, 0);
    }

    #[test]
    fn dump_replay_reconstructs_entries_and_recency() {
        let c = PlanCache::new(3);
        c.put("a".into(), "A".into());
        c.put_tagged("b".into(), "B".into(), vec!["model:m".into()]);
        c.put("c".into(), "C".into());
        assert!(c.get("a").is_some()); // a becomes most recent
        let dump = c.dump();
        assert_eq!(
            dump.iter().map(|(k, _, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["b", "c", "a"],
            "LRU order, least recent first"
        );
        // Replay into a fresh cache and confirm both contents and
        // recency survive: inserting a fourth entry must evict "b".
        let fresh = PlanCache::new(3);
        for (k, v, tags) in dump {
            fresh.replay_put(k, v, tags);
        }
        assert_eq!(fresh.counters().entries, 3);
        assert_eq!(fresh.counters().misses, 0, "replay leaves counters alone");
        fresh.put("d".into(), "D".into());
        let keys: Vec<String> = fresh.dump().into_iter().map(|(k, _, _)| k).collect();
        assert!(!keys.contains(&"b".to_string()), "LRU entry evicted");
        assert!(keys.contains(&"a".to_string()));
        // Replayed tags still drive invalidation.
        let again = PlanCache::new(3);
        again.replay_put("b".into(), "B".into(), vec!["model:m".into()]);
        again.replay_invalidate_tag("model:m");
        assert_eq!(again.counters().entries, 0);
        assert_eq!(again.counters().invalidations, 0);
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let c = PlanCache::new(2);
        c.put("a".into(), "A".into());
        c.put("a".into(), "A".into());
        assert_eq!(c.counters().entries, 1);
    }
}
