//! A one-shot client for the daemon: connect, send one request line,
//! read one response line. This is what `lcmm request` wraps.

use std::io::{self, BufRead, BufReader};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// Where a daemon is listening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address such as `127.0.0.1:4717`.
    Tcp(String),
    /// A Unix domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Interprets a `--connect` argument: anything containing a `/` (or
    /// starting with `.`) is a Unix socket path, everything else a TCP
    /// `host:port` address.
    #[must_use]
    pub fn parse(spec: &str) -> Self {
        if spec.contains('/') || spec.starts_with('.') {
            Endpoint::Unix(PathBuf::from(spec))
        } else {
            Endpoint::Tcp(spec.to_string())
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            Endpoint::Unix(path) => write!(f, "{}", path.display()),
        }
    }
}

/// Sends one request line and returns the daemon's response line
/// (without the trailing newline).
///
/// # Errors
///
/// Connection failures, write failures, or the daemon closing the
/// stream without answering.
pub fn request(endpoint: &Endpoint, line: &str) -> io::Result<String> {
    match endpoint {
        Endpoint::Tcp(addr) => exchange(TcpStream::connect(addr)?, line),
        Endpoint::Unix(path) => exchange(UnixStream::connect(path)?, line),
    }
}

fn exchange<S: io::Read + io::Write>(mut stream: S, line: &str) -> io::Result<String> {
    stream.write_all(line.trim_end().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    let n = reader.read_line(&mut response)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "daemon closed the connection without answering",
        ));
    }
    Ok(response.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing_distinguishes_unix_and_tcp() {
        assert_eq!(
            Endpoint::parse("127.0.0.1:4717"),
            Endpoint::Tcp("127.0.0.1:4717".to_string())
        );
        assert_eq!(
            Endpoint::parse("/tmp/lcmm.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/lcmm.sock"))
        );
        assert_eq!(
            Endpoint::parse("./lcmm.sock"),
            Endpoint::Unix(PathBuf::from("./lcmm.sock"))
        );
    }
}
