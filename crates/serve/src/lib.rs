//! Planning-as-a-service for LCMM: a long-running daemon that answers
//! planning requests over a JSON-lines protocol.
//!
//! The batch CLI pays full pipeline cost per invocation; design-space
//! explorations and CI loops issue many near-duplicate requests. The
//! daemon amortises that: one process holds the memoized
//! [`lcmm_core::Harness`] caches plus an LRU cache of finished plans,
//! a fixed worker pool computes, and a bounded admission queue plus
//! per-request deadlines keep latency predictable under load.
//!
//! * [`protocol`] — the wire types: [`WireRequest`], [`WireResponse`],
//!   graph specs, and the deterministic plan summary;
//! * [`server`] — [`Server`]: worker pool, admission control, plan
//!   cache, health watcher, cancellation, graceful shutdown;
//! * [`wal`] — the write-ahead log that makes registry and cache
//!   state survive crashes and restarts;
//! * [`transport`] — the stdio loop and the readiness-polled TCP /
//!   Unix-socket event loop;
//! * [`client`] — the one-shot client behind `lcmm request`;
//! * [`cache`], [`histogram`] — the plan LRU and `/stats` latency
//!   histograms.
//!
//! The wire protocol is documented in `docs/SERVE.md`. In-process use
//! needs no socket at all:
//!
//! ```
//! use lcmm_serve::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default().with_workers(2));
//! let response = server.handle_line(r#"{"graph":"alexnet"}"#);
//! assert!(response.contains("\"ok\":true"));
//! let replay = server.handle_line(r#"{"graph":"alexnet"}"#);
//! assert!(replay.contains("\"cached\":true"));
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod histogram;
pub mod protocol;
pub mod server;
pub mod transport;
pub mod wal;

pub use cache::{CacheCounters, PlanCache};
pub use client::{request, Endpoint};
pub use histogram::LatencyHistogram;
pub use protocol::{GraphSpec, Op, WireRequest, WireResponse};
pub use server::{Server, ServerConfig};
pub use transport::{serve_stdio, serve_tcp, serve_tcp_listener, serve_unix};
pub use wal::{FsyncPolicy, Wal, WalRecord, WalStats};

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering from poisoning instead of propagating the
/// panic. Every critical section in this crate leaves the guarded
/// state consistent at its possible panic points (or the state is
/// rebuilt by the caller), so a worker panic must not take down the
/// daemon by poisoning a shared lock — that was the crash the
/// panic-containment sweep fixed.
pub(crate) fn lock_safe<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
