//! The planning server: worker pool, bounded admission queue, plan
//! cache, deadlines, and graceful shutdown.
//!
//! [`Server::handle_line`] is the transport-independent entry point —
//! every transport (stdin, TCP, Unix socket, the in-process integration
//! tests) feeds request lines through it and writes the returned
//! response line back. Plan requests are admitted into a bounded queue
//! and picked up by a fixed pool of worker threads sharing one
//! memoized [`Harness`]; everything else (`ping`, `stats`, `shutdown`)
//! is answered inline.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lcmm_core::{CancelToken, Harness, LcmmError, PassStats};
use serde_json::Value;

use crate::cache::PlanCache;
use crate::histogram::LatencyHistogram;
use crate::protocol::{
    pass_stats_value, plan_summary, Op, ResolvedPlan, WireRequest, WireResponse,
};

/// Sizing knobs of a [`Server`].
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Worker threads computing plans.
    pub workers: usize,
    /// Admission bound: a plan request is rejected with `queue_full`
    /// when `queued + in_flight` would exceed this.
    pub queue_capacity: usize,
    /// Plan cache entries (0 disables the cache).
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 128,
        }
    }
}

impl ServerConfig {
    /// Sets the worker pool size (at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the admission bound (at least 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the plan cache capacity (0 disables caching).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }
}

/// The slot a blocked requester waits on until a worker fills it.
type ResponseSlot = Arc<(Mutex<Option<String>>, Condvar)>;

/// One admitted plan request.
struct Job {
    request: WireRequest,
    cancel: CancelToken,
    slot: ResponseSlot,
}

/// Queue state guarded by one mutex so the admission check
/// (`queued + in_flight` against capacity) is exact, not racy.
struct QueueState {
    jobs: VecDeque<Job>,
    in_flight: usize,
}

/// Per-pass latency histograms, recorded for computed plans only.
#[derive(Default)]
struct Histograms {
    liveness: LatencyHistogram,
    prefetch: LatencyHistogram,
    alloc_split: LatencyHistogram,
    total: LatencyHistogram,
}

struct Inner {
    harness: Harness,
    cache: PlanCache,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    shutting_down: AtomicBool,
    started: Instant,
    queue_capacity: usize,
    workers: usize,
    plans_total: AtomicU64,
    plans_completed: AtomicU64,
    plans_errored: AtomicU64,
    plans_rejected: AtomicU64,
    histograms: Mutex<Histograms>,
}

/// A running planning daemon: worker pool + queue + caches.
///
/// Cheap to share (`Clone` clones a handle, not the state). Dropping
/// the last handle without calling [`Server::shutdown`] detaches the
/// workers; transports always shut down explicitly.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Starts the worker pool and returns a serving handle.
    #[must_use]
    pub fn start(config: ServerConfig) -> Self {
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            harness: Harness::new(workers),
            cache: PlanCache::new(config.cache_capacity),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                in_flight: 0,
            }),
            queue_cv: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
            queue_capacity: config.queue_capacity.max(1),
            workers,
            plans_total: AtomicU64::new(0),
            plans_completed: AtomicU64::new(0),
            plans_errored: AtomicU64::new(0),
            plans_rejected: AtomicU64::new(0),
            histograms: Mutex::new(Histograms::default()),
        });
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let inner = Arc::clone(&inner);
            handles.push(std::thread::spawn(move || worker_loop(&inner)));
        }
        Self {
            inner,
            handles: Arc::new(Mutex::new(handles)),
        }
    }

    /// Handles one request line and returns one response line (no
    /// trailing newline). Never panics and never returns non-JSON: any
    /// failure becomes an `{"ok":false,"error":{...}}` envelope. Plan
    /// requests block until a worker answers (or admission rejects).
    pub fn handle_line(&self, line: &str) -> String {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return WireResponse::Error {
                id: None,
                code: "bad_request".to_string(),
                message: "empty request line".to_string(),
            }
            .to_line();
        }
        let request = match WireRequest::from_line(trimmed) {
            Ok(request) => request,
            Err(message) => {
                return WireResponse::Error {
                    id: None,
                    code: "bad_request".to_string(),
                    message,
                }
                .to_line()
            }
        };
        match request.op {
            Op::Ping => WireResponse::Pong { id: request.id }.to_line(),
            Op::Stats => WireResponse::Stats {
                id: request.id,
                stats: self.stats_value(),
            }
            .to_line(),
            Op::Shutdown => {
                let id = request.id;
                self.begin_shutdown();
                WireResponse::Shutdown { id }.to_line()
            }
            Op::Plan => self.submit_plan(request),
        }
    }

    /// True once a shutdown has been requested (new plans are refused).
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::SeqCst)
    }

    /// Flags shutdown and wakes the workers; does not wait for them.
    /// Queued work still drains — only *new* plan admissions refuse.
    pub fn begin_shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
    }

    /// Graceful shutdown: refuse new plans, drain the queue, join the
    /// workers. Idempotent; safe to call from any handle.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        let handles =
            std::mem::take(&mut *self.handles.lock().expect("server handle list poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Admission control + blocking wait for the plan response.
    fn submit_plan(&self, request: WireRequest) -> String {
        let inner = &self.inner;
        inner.plans_total.fetch_add(1, Ordering::Relaxed);
        // The cancel token starts ticking at admission, so time spent
        // waiting in the queue counts against the deadline.
        let cancel = match request.deadline_ms {
            Some(ms) => CancelToken::with_deadline(Instant::now() + Duration::from_millis(ms)),
            None => CancelToken::new(),
        };
        let slot: ResponseSlot = Arc::new((Mutex::new(None), Condvar::new()));
        {
            let mut queue = inner.queue.lock().expect("serve queue poisoned");
            if inner.shutting_down.load(Ordering::SeqCst) {
                inner.plans_rejected.fetch_add(1, Ordering::Relaxed);
                return WireResponse::Error {
                    id: request.id,
                    code: "shutting_down".to_string(),
                    message: "server is draining; no new plans accepted".to_string(),
                }
                .to_line();
            }
            if queue.jobs.len() + queue.in_flight >= inner.queue_capacity {
                inner.plans_rejected.fetch_add(1, Ordering::Relaxed);
                return WireResponse::Error {
                    id: request.id,
                    code: "queue_full".to_string(),
                    message: format!(
                        "admission queue at capacity ({}); retry later",
                        inner.queue_capacity
                    ),
                }
                .to_line();
            }
            queue.jobs.push_back(Job {
                request,
                cancel,
                slot: Arc::clone(&slot),
            });
        }
        inner.queue_cv.notify_one();
        let (lock, cv) = &*slot;
        let mut filled = lock.lock().expect("response slot poisoned");
        while filled.is_none() {
            filled = cv.wait(filled).expect("response slot poisoned");
        }
        filled.take().expect("slot observed as filled")
    }

    /// The `/stats` payload.
    fn stats_value(&self) -> Value {
        let inner = &self.inner;
        let cache = inner.cache.counters();
        let (depth, in_flight) = {
            let queue = inner.queue.lock().expect("serve queue poisoned");
            (queue.jobs.len(), queue.in_flight)
        };
        let histograms = {
            let h = inner.histograms.lock().expect("histograms poisoned");
            Value::Map(vec![
                ("alloc_split".to_string(), h.alloc_split.to_value()),
                ("liveness".to_string(), h.liveness.to_value()),
                ("prefetch".to_string(), h.prefetch.to_value()),
                ("total".to_string(), h.total.to_value()),
            ])
        };
        Value::Map(vec![
            (
                "cache".to_string(),
                Value::Map(vec![
                    ("capacity".to_string(), Value::U64(cache.capacity as u64)),
                    ("entries".to_string(), Value::U64(cache.entries as u64)),
                    ("hit_rate".to_string(), Value::F64(cache.hit_rate())),
                    ("hits".to_string(), Value::U64(cache.hits)),
                    ("misses".to_string(), Value::U64(cache.misses)),
                ]),
            ),
            ("histograms".to_string(), histograms),
            (
                "queue".to_string(),
                Value::Map(vec![
                    (
                        "capacity".to_string(),
                        Value::U64(inner.queue_capacity as u64),
                    ),
                    ("depth".to_string(), Value::U64(depth as u64)),
                    ("in_flight".to_string(), Value::U64(in_flight as u64)),
                ]),
            ),
            (
                "requests".to_string(),
                Value::Map(vec![
                    (
                        "completed".to_string(),
                        Value::U64(inner.plans_completed.load(Ordering::Relaxed)),
                    ),
                    (
                        "errors".to_string(),
                        Value::U64(inner.plans_errored.load(Ordering::Relaxed)),
                    ),
                    (
                        "rejected".to_string(),
                        Value::U64(inner.plans_rejected.load(Ordering::Relaxed)),
                    ),
                    (
                        "total".to_string(),
                        Value::U64(inner.plans_total.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "uptime_seconds".to_string(),
                Value::F64(inner.started.elapsed().as_secs_f64()),
            ),
            ("workers".to_string(), Value::U64(inner.workers as u64)),
        ])
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.inner.workers)
            .field("queue_capacity", &self.inner.queue_capacity)
            .field("shutting_down", &self.is_shutting_down())
            .finish()
    }
}

/// One worker: pop, compute, answer — until shutdown drains the queue.
fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("serve queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    queue.in_flight += 1;
                    break job;
                }
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.queue_cv.wait(queue).expect("serve queue poisoned");
            }
        };
        // A panic inside the pipeline must never take the worker (and
        // with it the daemon) down: surface it as `internal_error` and
        // keep serving.
        let line = catch_unwind(AssertUnwindSafe(|| process_plan(inner, &job))).unwrap_or_else(
            |payload| {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "pipeline panicked".to_string());
                inner.plans_errored.fetch_add(1, Ordering::Relaxed);
                WireResponse::Error {
                    id: job.request.id,
                    code: "internal_error".to_string(),
                    message,
                }
                .to_line()
            },
        );
        let (lock, cv) = &*job.slot;
        *lock.lock().expect("response slot poisoned") = Some(line);
        cv.notify_all();
        let mut queue = inner.queue.lock().expect("serve queue poisoned");
        queue.in_flight -= 1;
    }
}

/// Cache key: digest of the canonical JSON fingerprint of the resolved
/// request. Two hex-encoded FNV-1a passes with independent offsets make
/// accidental collisions (~2⁻¹²⁸) a non-concern while keeping keys
/// small even for inline thousand-node graphs.
fn cache_key(resolved: &ResolvedPlan) -> String {
    let fingerprint = format!(
        "{}\u{1}{}\u{1}{}\u{1}{}",
        serde_json::to_string(&resolved.graph).unwrap_or_default(),
        serde_json::to_string(&resolved.device).unwrap_or_default(),
        serde_json::to_string(&resolved.precision).unwrap_or_default(),
        serde_json::to_string(&resolved.options).unwrap_or_default(),
    );
    let fnv = |offset: u64| -> u64 {
        let mut hash = offset;
        for byte in fingerprint.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    };
    format!(
        "{:016x}{:016x}:{}",
        fnv(0xcbf2_9ce4_8422_2325),
        fnv(0x6c62_272e_07bb_0142),
        fingerprint.len()
    )
}

/// Runs one admitted plan request to a response line.
fn process_plan(inner: &Inner, job: &Job) -> String {
    let request = &job.request;
    let answer_err = |err: &LcmmError| {
        inner.plans_errored.fetch_add(1, Ordering::Relaxed);
        WireResponse::from_error(request.id, err).to_line()
    };
    // Deadline may already have passed while the job sat in the queue.
    if let Err(err) = job.cancel.check() {
        return answer_err(&err);
    }
    let resolved = match request.resolve_plan() {
        Ok(resolved) => resolved,
        Err(err) => return answer_err(&err),
    };
    if let Err(err) = job.cancel.check() {
        return answer_err(&err);
    }
    let key = cache_key(&resolved);
    if let Some(stored) = inner.cache.get(&key) {
        let plan = match serde_json::from_str::<Value>(&stored) {
            Ok(plan) => plan,
            Err(_) => Value::Str(stored),
        };
        inner.plans_completed.fetch_add(1, Ordering::Relaxed);
        return WireResponse::Plan {
            id: request.id,
            plan,
            cached: true,
            pass_stats: None,
        }
        .to_line();
    }
    let design =
        match inner
            .harness
            .try_design(&resolved.graph, &resolved.device, resolved.precision)
        {
            Ok(design) => design,
            Err(err) => return answer_err(&err),
        };
    let umm = inner.harness.baseline_from_design(&resolved.graph, &design);
    let result = match inner.harness.try_lcmm_with_design(
        &resolved.graph,
        &design,
        resolved.options,
        Some(&job.cancel),
    ) {
        Ok(result) => result,
        Err(err) => return answer_err(&err),
    };
    record_pass_stats(inner, &result.stats);
    let plan = plan_summary(&resolved, &result, &umm);
    let stored = serde_json::to_string(&plan).expect("plan summary serialises");
    inner.cache.put(key, stored);
    inner.plans_completed.fetch_add(1, Ordering::Relaxed);
    WireResponse::Plan {
        id: request.id,
        plan,
        cached: false,
        pass_stats: request
            .include_stats
            .then(|| pass_stats_value(&result.stats)),
    }
    .to_line()
}

/// Folds one computed run's pass timings into the `/stats` histograms.
fn record_pass_stats(inner: &Inner, stats: &PassStats) {
    let mut h = inner.histograms.lock().expect("histograms poisoned");
    h.liveness.record(stats.liveness_seconds);
    h.prefetch.record(stats.prefetch_seconds);
    h.alloc_split.record(stats.alloc_split_seconds);
    h.total.record(stats.total_seconds);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_of(line: &str) -> Value {
        let v: Value = serde_json::from_str(line).expect("response is JSON");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{line}");
        v.get("plan").cloned().expect("plan payload")
    }

    #[test]
    fn plans_ping_stats_and_shutdown() {
        let server = Server::start(ServerConfig::default().with_workers(2));
        assert_eq!(
            server.handle_line(r#"{"op":"ping","id":1}"#),
            r#"{"id":1,"ok":true,"pong":true}"#
        );
        let first = server.handle_line(r#"{"graph":"alexnet"}"#);
        let plan = plan_of(&first);
        assert_eq!(plan.get("model").and_then(Value::as_str), Some("alexnet"));
        let stats_line = server.handle_line(r#"{"op":"stats"}"#);
        let stats: Value = serde_json::from_str(&stats_line).unwrap();
        let requests = stats.get("stats").and_then(|s| s.get("requests")).unwrap();
        assert_eq!(requests.get("completed").and_then(Value::as_u64), Some(1));
        let ack = server.handle_line(r#"{"op":"shutdown"}"#);
        assert!(ack.contains("\"shutdown\":true"));
        server.shutdown();
        // After shutdown, plans are refused but the handle still answers.
        let refused = server.handle_line(r#"{"graph":"alexnet"}"#);
        assert!(refused.contains("shutting_down"), "{refused}");
    }

    #[test]
    fn duplicate_plans_are_byte_identical_cache_hits() {
        let server = Server::start(ServerConfig::default().with_workers(2));
        let line = r#"{"graph":"alexnet","precision":"8"}"#;
        let first = server.handle_line(line);
        let second = server.handle_line(line);
        let third = server.handle_line(line);
        assert!(first.contains("\"cached\":false"));
        assert!(second.contains("\"cached\":true"));
        assert_eq!(second, third, "two cache hits are byte-identical");
        assert_eq!(plan_of(&first), plan_of(&second));
        server.shutdown();
    }

    #[test]
    fn bad_requests_do_not_kill_the_daemon() {
        let server = Server::start(ServerConfig::default().with_workers(1));
        let garbage = server.handle_line("][");
        assert!(garbage.contains("bad_request"));
        let model = server.handle_line(r#"{"graph":"not-a-net"}"#);
        assert!(model.contains("unknown_model"));
        let device = server.handle_line(r#"{"graph":"alexnet","device":"gpu"}"#);
        assert!(device.contains("unknown_device"));
        // Still serving after three failures.
        let ok = server.handle_line(r#"{"graph":"alexnet"}"#);
        assert!(ok.contains("\"ok\":true"));
        server.shutdown();
    }

    #[test]
    fn expired_deadline_times_out() {
        let server = Server::start(ServerConfig::default().with_workers(1));
        // A large unique synthetic graph with a 1 ms budget cannot finish.
        let line = r#"{"graph":"synthetic:1024x4x99","deadline_ms":0}"#;
        let resp = server.handle_line(line);
        assert!(resp.contains("\"code\":\"timeout\""), "{resp}");
        server.shutdown();
    }
}
