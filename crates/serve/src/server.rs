//! The planning server: worker pool, bounded admission queue, plan
//! cache, deadlines, durability, and graceful shutdown.
//!
//! [`Server::handle_line`] is the transport-independent entry point —
//! every transport (stdin, the in-process integration tests) feeds
//! request lines through it and writes the returned response line
//! back; the event-loop transports use the non-blocking
//! [`Server::handle_line_async`] twin instead. Plan requests are
//! admitted into a bounded queue and picked up by a fixed pool of
//! worker threads sharing one memoized [`Harness`]; everything else
//! (`ping`, `stats`, `register`, `shutdown`) is answered inline.
//!
//! Three things keep the daemon alive through faults:
//!
//! * every shared lock recovers from poisoning (`lock_safe`) — a
//!   worker panic is surfaced as `internal_error` and must not crash
//!   the *next* unrelated request;
//! * a health watcher recycles workers stuck past the stall budget and
//!   fails their request with a typed `worker_recycled` error, so a
//!   wedged computation can neither hang its client nor shrink the
//!   pool;
//! * registry mutations and cache insertions are logged to a
//!   write-ahead log ([`crate::wal`]) when one is configured, and
//!   replayed bit-identically on restart.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lcmm_core::{CancelToken, Harness, LcmmError, PassStats};
use lcmm_fpga::{Device, Precision};
use lcmm_graph::Graph;
use lcmm_multi::{coplan, coplan_summary, CoplanOptions, TenantSpec};
use lcmm_workload::ControllerConfig;
use serde_json::Value;

use crate::cache::PlanCache;
use crate::histogram::LatencyHistogram;
use crate::lock_safe;
use crate::protocol::{
    pass_stats_value, plan_summary, precision_name, GraphSpec, Op, ResolvedPlan, WireRequest,
    WireResponse,
};
use crate::wal::{FsyncPolicy, Wal, WalRecord};

/// Sizing and durability knobs of a [`Server`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Worker threads computing plans.
    pub workers: usize,
    /// Admission bound: a plan request is rejected with `queue_full`
    /// when `queued + in_flight` would exceed this.
    pub queue_capacity: usize,
    /// Plan cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Write-ahead-log directory; `None` keeps registry and cache
    /// purely in memory (the pre-WAL behaviour).
    pub wal_dir: Option<PathBuf>,
    /// When appended WAL records are forced to stable storage.
    pub fsync: FsyncPolicy,
    /// Replay an existing WAL on startup; `false` (`--no-recover`)
    /// wipes it and starts cold.
    pub recover: bool,
    /// Recycle a worker stuck on one request longer than this and fail
    /// the request with `worker_recycled`; `None` disables the health
    /// watcher (a wedged worker then hangs its client, as before).
    pub stall_budget: Option<Duration>,
    /// Interpret `debug:` graph names as fault-injection hooks (panic,
    /// lock poisoning, stalls). Tests and the CI gates only.
    pub debug_hooks: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 128,
            wal_dir: None,
            fsync: FsyncPolicy::Os,
            recover: true,
            stall_budget: Some(Duration::from_secs(30)),
            debug_hooks: false,
        }
    }
}

impl ServerConfig {
    /// Sets the worker pool size (at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the admission bound (at least 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the plan cache capacity (0 disables caching).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Enables the write-ahead log in `dir`.
    #[must_use]
    pub fn with_wal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Sets the WAL fsync policy.
    #[must_use]
    pub fn with_fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Whether to replay an existing WAL on startup.
    #[must_use]
    pub fn with_recover(mut self, recover: bool) -> Self {
        self.recover = recover;
        self
    }

    /// Sets (or with `None` disables) the worker stall budget.
    #[must_use]
    pub fn with_stall_budget(mut self, budget: Option<Duration>) -> Self {
        self.stall_budget = budget;
        self
    }

    /// Enables the `debug:` fault-injection hooks.
    #[must_use]
    pub fn with_debug_hooks(mut self, on: bool) -> Self {
        self.debug_hooks = on;
        self
    }
}

/// How a plan response leaves the server once a worker (or the watcher,
/// or shutdown) produces it.
type Callback = Box<dyn FnOnce(String) + Send>;

/// The slot a plan request's response is delivered through. Blocking
/// callers park on the condvar; event-loop callers attach a callback.
/// `fill` is idempotent — exactly one filler wins, so the watcher can
/// fail a request whose worker later completes (or shutdown can fail a
/// request a worker races to answer) without double delivery.
struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

#[derive(Default)]
struct SlotState {
    done: bool,
    response: Option<String>,
    callback: Option<Callback>,
}

impl Slot {
    /// A slot for a blocking caller ([`Server::handle_line`]).
    fn blocking() -> Self {
        Self {
            state: Mutex::new(SlotState::default()),
            cv: Condvar::new(),
        }
    }

    /// A slot that delivers through `callback` instead of waking a
    /// parked thread.
    fn with_callback(callback: Callback) -> Self {
        Self {
            state: Mutex::new(SlotState {
                done: false,
                response: None,
                callback: Some(callback),
            }),
            cv: Condvar::new(),
        }
    }

    /// Delivers `line`; later fills are discarded.
    fn fill(&self, line: String) {
        let callback = {
            let mut state = lock_safe(&self.state);
            if state.done {
                return;
            }
            state.done = true;
            match state.callback.take() {
                Some(callback) => Some(callback),
                None => {
                    state.response = Some(line.clone());
                    None
                }
            }
        };
        match callback {
            // Run the callback outside the slot lock: it typically
            // hands the line to a transport channel.
            Some(callback) => callback(line),
            None => self.cv.notify_all(),
        }
    }

    /// Parks until the slot is filled (blocking callers only).
    fn wait(&self) -> String {
        let mut state = lock_safe(&self.state);
        while state.response.is_none() {
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        state.response.take().expect("slot observed as filled")
    }
}

/// One admitted plan request.
struct Job {
    request: WireRequest,
    cancel: CancelToken,
    slot: Arc<Slot>,
}

/// Queue state guarded by one mutex so the admission check
/// (`queued + in_flight` against capacity) is exact, not racy.
struct QueueState {
    jobs: VecDeque<Job>,
    in_flight: usize,
}

/// Per-pass latency histograms, recorded for computed plans only.
#[derive(Default)]
struct Histograms {
    liveness: LatencyHistogram,
    prefetch: LatencyHistogram,
    alloc_split: LatencyHistogram,
    total: LatencyHistogram,
}

/// One registered tenant: the resolved graph plus its co-planning
/// parameters, keyed by model name in the registry.
#[derive(Clone)]
struct Registered {
    graph: Graph,
    /// Digest of the graph's canonical JSON — the identity registry
    /// churn is judged by: only a *content* change invalidates the
    /// harness's pass artifacts for the old graph.
    graph_digest: String,
    precision: Precision,
    weight: f64,
    share: Option<f64>,
}

/// Digest of a graph's canonical JSON fingerprint.
fn graph_digest(graph: &Graph) -> String {
    digest(&serde_json::to_string(graph).unwrap_or_default())
}

/// The invalidation tag carried by every cached co-plan that inlined
/// `model`.
fn model_tag(model: &str) -> String {
    format!("model:{model}")
}

/// What the health watcher inspects: the job a worker is currently
/// computing. `abandoned` is the handshake — the watcher sets it (and
/// takes over the job's accounting) under the `busy` lock; the worker
/// checks it under the same lock after computing, so exactly one side
/// fills the slot and decrements `in_flight`.
struct BusyJob {
    started: Instant,
    cancel: CancelToken,
    slot: Arc<Slot>,
    request_id: Option<u64>,
    request_v: Option<u64>,
    abandoned: bool,
}

/// One pool member, shared between its worker thread and the watcher.
struct WorkerState {
    id: u64,
    busy: Mutex<Option<BusyJob>>,
}

struct Inner {
    harness: Harness,
    cache: PlanCache,
    registry: Mutex<BTreeMap<String, Registered>>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    shutting_down: AtomicBool,
    started: Instant,
    queue_capacity: usize,
    workers: usize,
    plans_total: AtomicU64,
    plans_completed: AtomicU64,
    plans_errored: AtomicU64,
    plans_rejected: AtomicU64,
    recycled: AtomicU64,
    stall_budget: Option<Duration>,
    debug_hooks: bool,
    histograms: Mutex<Histograms>,
    /// Durability; `None` runs purely in memory. Every mutation goes
    /// through [`durably`], so WAL order always equals apply order.
    wal: Option<Mutex<Wal>>,
    /// Live (non-abandoned) workers. Workers remove themselves on
    /// exit; the watcher removes the worker it abandons and adds the
    /// replacement. Shutdown completes when this empties.
    pool: Mutex<Vec<Arc<WorkerState>>>,
    pool_cv: Condvar,
    next_worker_id: AtomicU64,
}

/// A running planning daemon: worker pool + queue + caches (+ WAL).
///
/// Cheap to share (`Clone` clones a handle, not the state). Dropping
/// the last handle without calling [`Server::shutdown`] detaches the
/// workers; transports always shut down explicitly.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
    watcher: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl Server {
    /// Starts the worker pool and returns a serving handle.
    ///
    /// # Panics
    ///
    /// If a configured WAL directory cannot be opened — use
    /// [`Server::try_start`] to handle that; without a `wal_dir` this
    /// never panics.
    #[must_use]
    pub fn start(config: ServerConfig) -> Self {
        Self::try_start(config).expect("WAL directory failed to open")
    }

    /// [`Server::start`], surfacing WAL I/O errors instead of
    /// panicking. When `config.wal_dir` is set, the log is opened (or
    /// wiped first when `recover` is off) and replayed into the
    /// registry and cache before the first worker spawns.
    ///
    /// # Errors
    ///
    /// Filesystem failures opening, truncating, or replaying the WAL.
    pub fn try_start(config: ServerConfig) -> io::Result<Self> {
        let workers = config.workers.max(1);
        let mut replay = Vec::new();
        let wal = match &config.wal_dir {
            Some(dir) => {
                if !config.recover {
                    Wal::reset(dir)?;
                }
                let (wal, records) = Wal::open(dir, config.fsync)?;
                replay = records;
                Some(Mutex::new(wal))
            }
            None => None,
        };
        let inner = Arc::new(Inner {
            harness: Harness::new(workers),
            cache: PlanCache::new(config.cache_capacity),
            registry: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                in_flight: 0,
            }),
            queue_cv: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
            queue_capacity: config.queue_capacity.max(1),
            workers,
            plans_total: AtomicU64::new(0),
            plans_completed: AtomicU64::new(0),
            plans_errored: AtomicU64::new(0),
            plans_rejected: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            stall_budget: config.stall_budget,
            debug_hooks: config.debug_hooks,
            histograms: Mutex::new(Histograms::default()),
            wal,
            pool: Mutex::new(Vec::with_capacity(workers)),
            pool_cv: Condvar::new(),
            next_worker_id: AtomicU64::new(0),
        });
        // Warm-start before anything else can observe the state: the
        // first request already sees the recovered registry and cache.
        for record in replay {
            apply_replayed(&inner, record);
        }
        for _ in 0..workers {
            spawn_worker(&inner);
        }
        let watcher = inner.stall_budget.map(|budget| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || watcher_loop(&inner, budget))
        });
        Ok(Self {
            inner,
            watcher: Arc::new(Mutex::new(watcher)),
        })
    }

    /// Handles one request line and returns one response line (no
    /// trailing newline). Never panics and never returns non-JSON: any
    /// failure becomes an `{"ok":false,"error":{...}}` envelope. Plan
    /// requests block until a worker answers (or admission rejects, or
    /// the watcher recycles a stuck worker).
    pub fn handle_line(&self, line: &str) -> String {
        let slot = Arc::new(Slot::blocking());
        match self.route(line, &slot) {
            Some(inline) => inline,
            None => slot.wait(),
        }
    }

    /// [`Server::handle_line`] for event-loop transports: never blocks
    /// the calling thread on plan computation. Inline operations invoke
    /// `reply` before returning; queued plans invoke it from whichever
    /// thread completes the request (a worker, the health watcher, or
    /// shutdown). `reply` is called exactly once.
    pub fn handle_line_async(&self, line: &str, reply: Box<dyn FnOnce(String) + Send>) {
        let slot = Arc::new(Slot::with_callback(reply));
        if let Some(inline) = self.route(line, &slot) {
            slot.fill(inline);
        }
    }

    /// Parses and dispatches one line. `Some` is an inline answer;
    /// `None` means the request was queued and `slot` will be filled.
    fn route(&self, line: &str, slot: &Arc<Slot>) -> Option<String> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Some(
                WireResponse::Error {
                    id: None,
                    code: "bad_request".to_string(),
                    message: "empty request line".to_string(),
                }
                .to_line(),
            );
        }
        let request = match WireRequest::from_line(trimmed) {
            Ok(request) => request,
            Err(message) => {
                return Some(
                    WireResponse::Error {
                        id: None,
                        code: "bad_request".to_string(),
                        message,
                    }
                    .to_line(),
                )
            }
        };
        // The version gate runs before dispatch: only v1 (and the
        // implicit absent-means-1 form) is served. The rejection does
        // not echo `v` — there is no agreed version to speak.
        if let Some(v) = request.v {
            if v != 1 {
                return Some(
                    WireResponse::Error {
                        id: request.id,
                        code: "unsupported_version".to_string(),
                        message: format!(
                            "protocol version {v} is not supported; this server speaks v1"
                        ),
                    }
                    .to_line(),
                );
            }
        }
        match request.op {
            Op::Ping => Some(WireResponse::Pong { id: request.id }.to_line_v(request.v)),
            Op::Stats => Some(
                WireResponse::Stats {
                    id: request.id,
                    stats: self.stats_value(),
                }
                .to_line_v(request.v),
            ),
            Op::Shutdown => {
                let id = request.id;
                self.begin_shutdown();
                Some(WireResponse::Shutdown { id }.to_line_v(request.v))
            }
            Op::Register => Some(self.handle_register(&request)),
            Op::Unregister => Some(self.handle_unregister(&request)),
            // Co-planning is as expensive as planning: both go through
            // admission control and the worker pool, as do routing (a
            // route may have to compute the co-plan it routes from) and
            // the trace-driven workload simulation.
            Op::Plan | Op::Coplan | Op::Route | Op::Workload => self.submit_plan(request, slot),
        }
    }

    /// Registers (or re-registers) a model for co-planning. Any change
    /// to the tenant set invalidates every cached co-plan that inlined
    /// it, and the mutation is WAL-logged for recovery.
    fn handle_register(&self, request: &WireRequest) -> String {
        let answer_err =
            |err: &LcmmError| WireResponse::from_error(request.id, err).to_line_v(request.v);
        let Some(model) = request.model.clone().filter(|m| !m.is_empty()) else {
            return answer_err(&LcmmError::InvalidRequest(
                "register needs a non-empty \"model\" field".to_string(),
            ));
        };
        let Some(spec) = request.graph.as_ref() else {
            return answer_err(&LcmmError::InvalidRequest(
                "register needs a \"graph\" field".to_string(),
            ));
        };
        let graph = match spec.resolve() {
            Ok(graph) => graph,
            Err(err) => return answer_err(&err),
        };
        let precision =
            match crate::protocol::parse_precision(request.precision.as_deref().unwrap_or("fix16"))
            {
                Ok(precision) => precision,
                Err(err) => return answer_err(&err),
            };
        let weight = request.weight.unwrap_or(1.0);
        if !(weight.is_finite() && weight > 0.0) {
            return answer_err(&LcmmError::InvalidRequest(format!(
                "weight {weight} must be positive and finite"
            )));
        }
        if let Some(share) = request.share {
            if !(share.is_finite() && share > 0.0 && share <= 1.0) {
                return answer_err(&LcmmError::InvalidRequest(format!(
                    "share {share} outside (0, 1]"
                )));
            }
        }
        let entry = Registered {
            graph_digest: graph_digest(&graph),
            graph,
            precision,
            weight,
            share: request.share,
        };
        let record = WalRecord::Register {
            model: model.clone(),
            graph_json: serde_json::to_string(&entry.graph).unwrap_or_default(),
            precision: precision_name(entry.precision).to_string(),
            weight: entry.weight,
            share: entry.share,
        };
        let inner = &self.inner;
        let models = durably(inner, || {
            let (models, previous, digest_still_used) = {
                let mut registry = lock_safe(&inner.registry);
                let previous = registry.insert(model.clone(), entry.clone());
                let digest_still_used = previous.as_ref().is_some_and(|old| {
                    registry
                        .values()
                        .any(|r| r.graph_digest == old.graph_digest)
                });
                (registry.len() as u64, previous, digest_still_used)
            };
            let identical = previous.as_ref().is_some_and(|old| {
                old.graph_digest == entry.graph_digest
                    && old.precision == entry.precision
                    && old.weight == entry.weight
                    && old.share == entry.share
            });
            if !identical {
                // Only co-plans that inlined this model are stale; plans
                // of other tenant sets (and content-addressed
                // single-model `plan` entries) survive.
                inner.cache.invalidate_tag(&model_tag(&model));
                // Pass artifacts are keyed by graph content, so they go
                // stale only when the model's graph *content* changed
                // and no other registered model still uses the old
                // graph.
                if let Some(old) = previous {
                    if old.graph_digest != entry.graph_digest && !digest_still_used {
                        inner.harness.invalidate_graph(&old.graph);
                    }
                }
            }
            (models, Some(record))
        });
        WireResponse::Registry {
            id: request.id,
            action: "register".to_string(),
            model,
            models,
        }
        .to_line_v(request.v)
    }

    /// Removes a model from the registry, invalidating cached co-plans
    /// and WAL-logging the removal.
    fn handle_unregister(&self, request: &WireRequest) -> String {
        let Some(model) = request.model.clone().filter(|m| !m.is_empty()) else {
            return WireResponse::from_error(
                request.id,
                &LcmmError::InvalidRequest(
                    "unregister needs a non-empty \"model\" field".to_string(),
                ),
            )
            .to_line_v(request.v);
        };
        let inner = &self.inner;
        let (removed, models) = durably(inner, || {
            let (removed, models, digest_still_used) = {
                let mut registry = lock_safe(&inner.registry);
                let removed = registry.remove(&model);
                let digest_still_used = removed.as_ref().is_some_and(|old| {
                    registry
                        .values()
                        .any(|r| r.graph_digest == old.graph_digest)
                });
                (removed, registry.len() as u64, digest_still_used)
            };
            let Some(old) = removed else {
                // Nothing changed: nothing to log.
                return ((false, models), None);
            };
            inner.cache.invalidate_tag(&model_tag(&model));
            if !digest_still_used {
                inner.harness.invalidate_graph(&old.graph);
            }
            (
                (true, models),
                Some(WalRecord::Unregister {
                    model: model.clone(),
                }),
            )
        });
        if !removed {
            return WireResponse::from_error(request.id, &LcmmError::UnknownModel(model))
                .to_line_v(request.v);
        }
        WireResponse::Registry {
            id: request.id,
            action: "unregister".to_string(),
            model,
            models,
        }
        .to_line_v(request.v)
    }

    /// True once a shutdown has been requested (new plans are refused).
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::SeqCst)
    }

    /// Flags shutdown and wakes the workers; does not wait for them.
    /// Queued work still drains — only *new* plan admissions refuse.
    pub fn begin_shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
    }

    /// Graceful shutdown: refuse new plans, drain the queue, wait for
    /// the workers, fail anything left unanswered. Idempotent; safe to
    /// call from any handle.
    ///
    /// Workers the watcher abandoned as stuck are *not* waited for —
    /// their requests were already failed with `worker_recycled`, and
    /// a thread that never returns must not be able to hang shutdown.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        {
            let mut pool = lock_safe(&self.inner.pool);
            while !pool.is_empty() {
                pool = self
                    .inner
                    .pool_cv
                    .wait(pool)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        if let Some(watcher) = lock_safe(&self.watcher).take() {
            let _ = watcher.join();
        }
        // A submit that raced the drain may have queued after the last
        // worker exited; fail those slots rather than strand their
        // clients (fill is idempotent, so racing a worker is safe).
        let leftovers: Vec<Job> = {
            let mut queue = lock_safe(&self.inner.queue);
            queue.jobs.drain(..).collect()
        };
        for job in leftovers {
            self.inner.plans_rejected.fetch_add(1, Ordering::Relaxed);
            job.slot.fill(
                WireResponse::Error {
                    id: job.request.id,
                    code: "shutting_down".to_string(),
                    message: "server shut down before the request was served".to_string(),
                }
                .to_line_v(job.request.v),
            );
        }
    }

    /// Admission control: `Some` is an inline rejection, `None` means
    /// the job was queued and `slot` will be filled asynchronously.
    fn submit_plan(&self, request: WireRequest, slot: &Arc<Slot>) -> Option<String> {
        let inner = &self.inner;
        inner.plans_total.fetch_add(1, Ordering::Relaxed);
        // The cancel token starts ticking at admission, so time spent
        // waiting in the queue counts against the deadline.
        let cancel = match request.deadline_ms {
            Some(ms) => CancelToken::with_deadline(Instant::now() + Duration::from_millis(ms)),
            None => CancelToken::new(),
        };
        {
            let mut queue = lock_safe(&inner.queue);
            if inner.shutting_down.load(Ordering::SeqCst) {
                inner.plans_rejected.fetch_add(1, Ordering::Relaxed);
                return Some(
                    WireResponse::Error {
                        id: request.id,
                        code: "shutting_down".to_string(),
                        message: "server is draining; no new plans accepted".to_string(),
                    }
                    .to_line_v(request.v),
                );
            }
            if queue.jobs.len() + queue.in_flight >= inner.queue_capacity {
                inner.plans_rejected.fetch_add(1, Ordering::Relaxed);
                return Some(
                    WireResponse::Error {
                        id: request.id,
                        code: "queue_full".to_string(),
                        message: format!(
                            "admission queue at capacity ({}); retry later",
                            inner.queue_capacity
                        ),
                    }
                    .to_line_v(request.v),
                );
            }
            queue.jobs.push_back(Job {
                request,
                cancel,
                slot: Arc::clone(slot),
            });
        }
        inner.queue_cv.notify_one();
        None
    }

    /// The `/stats` payload.
    fn stats_value(&self) -> Value {
        let inner = &self.inner;
        let cache = inner.cache.counters();
        let (depth, in_flight) = {
            let queue = lock_safe(&inner.queue);
            (queue.jobs.len(), queue.in_flight)
        };
        let histograms = {
            let h = lock_safe(&inner.histograms);
            Value::Map(vec![
                ("alloc_split".to_string(), h.alloc_split.to_value()),
                ("liveness".to_string(), h.liveness.to_value()),
                ("prefetch".to_string(), h.prefetch.to_value()),
                ("total".to_string(), h.total.to_value()),
            ])
        };
        let models = lock_safe(&inner.registry).len();
        let wal = match &inner.wal {
            Some(wal) => {
                let s = lock_safe(wal).stats();
                Value::Map(vec![
                    ("appended".to_string(), Value::U64(s.appended)),
                    ("compactions".to_string(), Value::U64(s.compactions)),
                    ("enabled".to_string(), Value::Bool(true)),
                    ("log_bytes".to_string(), Value::U64(s.log_bytes)),
                    ("replayed".to_string(), Value::U64(s.replayed)),
                    ("truncated_bytes".to_string(), Value::U64(s.truncated_bytes)),
                ])
            }
            None => Value::Map(vec![("enabled".to_string(), Value::Bool(false))]),
        };
        Value::Map(vec![
            (
                "cache".to_string(),
                Value::Map(vec![
                    ("capacity".to_string(), Value::U64(cache.capacity as u64)),
                    ("entries".to_string(), Value::U64(cache.entries as u64)),
                    ("evictions".to_string(), Value::U64(cache.evictions)),
                    ("hit_rate".to_string(), Value::F64(cache.hit_rate())),
                    ("hits".to_string(), Value::U64(cache.hits)),
                    ("invalidations".to_string(), Value::U64(cache.invalidations)),
                    ("misses".to_string(), Value::U64(cache.misses)),
                ]),
            ),
            ("harness".to_string(), {
                let h = inner.harness.cache_stats();
                Value::Map(vec![
                    (
                        "artifact_hits".to_string(),
                        Value::U64(h.artifact_hits as u64),
                    ),
                    (
                        "artifact_misses".to_string(),
                        Value::U64(h.artifact_misses as u64),
                    ),
                    ("result_hits".to_string(), Value::U64(h.result_hits as u64)),
                    (
                        "result_misses".to_string(),
                        Value::U64(h.result_misses as u64),
                    ),
                ])
            }),
            (
                "health".to_string(),
                Value::Map(vec![
                    (
                        "recycled".to_string(),
                        Value::U64(inner.recycled.load(Ordering::Relaxed)),
                    ),
                    (
                        "stall_budget_ms".to_string(),
                        match inner.stall_budget {
                            Some(budget) => Value::U64(budget.as_millis() as u64),
                            None => Value::Null,
                        },
                    ),
                ]),
            ),
            ("histograms".to_string(), histograms),
            (
                "queue".to_string(),
                Value::Map(vec![
                    (
                        "capacity".to_string(),
                        Value::U64(inner.queue_capacity as u64),
                    ),
                    ("depth".to_string(), Value::U64(depth as u64)),
                    ("in_flight".to_string(), Value::U64(in_flight as u64)),
                ]),
            ),
            (
                "registry".to_string(),
                Value::Map(vec![("models".to_string(), Value::U64(models as u64))]),
            ),
            (
                "requests".to_string(),
                Value::Map(vec![
                    (
                        "completed".to_string(),
                        Value::U64(inner.plans_completed.load(Ordering::Relaxed)),
                    ),
                    (
                        "errors".to_string(),
                        Value::U64(inner.plans_errored.load(Ordering::Relaxed)),
                    ),
                    (
                        "rejected".to_string(),
                        Value::U64(inner.plans_rejected.load(Ordering::Relaxed)),
                    ),
                    (
                        "total".to_string(),
                        Value::U64(inner.plans_total.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "uptime_seconds".to_string(),
                Value::F64(inner.started.elapsed().as_secs_f64()),
            ),
            ("wal".to_string(), wal),
            ("workers".to_string(), Value::U64(inner.workers as u64)),
        ])
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.inner.workers)
            .field("queue_capacity", &self.inner.queue_capacity)
            .field("wal", &self.inner.wal.is_some())
            .field("shutting_down", &self.is_shutting_down())
            .finish()
    }
}

/// Applies one mutation and logs its WAL record, both under the WAL
/// lock, so the log order always equals the apply order across threads.
/// The closure returns `None` as the record when nothing changed
/// (e.g. unregistering an unknown model). Compaction piggybacks here:
/// when the log outgrows its threshold, the full registry + cache state
/// is snapshotted and the log truncated.
fn durably<R>(inner: &Inner, apply: impl FnOnce() -> (R, Option<WalRecord>)) -> R {
    let Some(wal) = &inner.wal else {
        return apply().0;
    };
    let mut wal = lock_safe(wal);
    let (result, record) = apply();
    if let Some(record) = record {
        if let Err(e) = wal.append(&record) {
            // Keep serving with durability degraded rather than dying:
            // the in-memory state is already consistent.
            eprintln!("lcmm serve: wal append failed: {e}");
        }
        if wal.needs_compaction() {
            let state = snapshot_records(inner);
            if let Err(e) = wal.compact(&state) {
                eprintln!("lcmm serve: wal compaction failed: {e}");
            }
        }
    }
    result
}

/// The full durable state as replayable records: every registry entry,
/// then every cache entry in LRU order. This is what compaction writes
/// as the snapshot.
fn snapshot_records(inner: &Inner) -> Vec<WalRecord> {
    let mut out = Vec::new();
    {
        let registry = lock_safe(&inner.registry);
        for (name, r) in registry.iter() {
            out.push(WalRecord::Register {
                model: name.clone(),
                graph_json: serde_json::to_string(&r.graph).unwrap_or_default(),
                precision: precision_name(r.precision).to_string(),
                weight: r.weight,
                share: r.share,
            });
        }
    }
    for (key, value, tags) in inner.cache.dump() {
        out.push(WalRecord::PlanPut { key, value, tags });
    }
    out
}

/// Applies one replayed WAL record at startup. Mirrors the live
/// mutation paths (including the invalidation a non-identical
/// re-register triggers) minus the counters and the harness hooks —
/// the harness is empty before the first worker spawns. Undecodable
/// records (e.g. a graph encoding from a future version) are skipped,
/// not fatal; replay of a valid log is idempotent.
fn apply_replayed(inner: &Inner, record: WalRecord) {
    match record {
        WalRecord::Register {
            model,
            graph_json,
            precision,
            weight,
            share,
        } => {
            let Ok(graph) = serde_json::from_str::<Graph>(&graph_json) else {
                return;
            };
            let Ok(precision) = crate::protocol::parse_precision(&precision) else {
                return;
            };
            let entry = Registered {
                graph_digest: graph_digest(&graph),
                graph,
                precision,
                weight,
                share,
            };
            let previous = lock_safe(&inner.registry).insert(model.clone(), entry.clone());
            let identical = previous.as_ref().is_some_and(|old| {
                old.graph_digest == entry.graph_digest
                    && old.precision == entry.precision
                    && old.weight == entry.weight
                    && old.share == entry.share
            });
            if !identical {
                inner.cache.replay_invalidate_tag(&model_tag(&model));
            }
        }
        WalRecord::Unregister { model } => {
            let removed = lock_safe(&inner.registry).remove(&model);
            if removed.is_some() {
                inner.cache.replay_invalidate_tag(&model_tag(&model));
            }
        }
        WalRecord::PlanPut { key, value, tags } => inner.cache.replay_put(key, value, tags),
    }
}

/// Adds a fresh worker to the pool and spawns its thread.
fn spawn_worker(inner: &Arc<Inner>) {
    let id = inner.next_worker_id.fetch_add(1, Ordering::Relaxed);
    let state = Arc::new(WorkerState {
        id,
        busy: Mutex::new(None),
    });
    lock_safe(&inner.pool).push(Arc::clone(&state));
    let inner = Arc::clone(inner);
    std::thread::spawn(move || worker_loop(&inner, &state));
}

/// Removes worker `id` from the pool and wakes anyone waiting for the
/// pool to drain (shutdown).
fn leave_pool(inner: &Inner, id: u64) {
    lock_safe(&inner.pool).retain(|w| w.id != id);
    inner.pool_cv.notify_all();
}

/// One worker: pop, compute, answer — until shutdown drains the queue,
/// or the watcher abandons this worker as stuck.
fn worker_loop(inner: &Arc<Inner>, state: &Arc<WorkerState>) {
    loop {
        let job = {
            let mut queue = lock_safe(&inner.queue);
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    queue.in_flight += 1;
                    break job;
                }
                if inner.shutting_down.load(Ordering::SeqCst) {
                    drop(queue);
                    leave_pool(inner, state.id);
                    return;
                }
                queue = inner
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        *lock_safe(&state.busy) = Some(BusyJob {
            started: Instant::now(),
            cancel: job.cancel.clone(),
            slot: Arc::clone(&job.slot),
            request_id: job.request.id,
            request_v: job.request.v,
            abandoned: false,
        });
        // A panic inside the pipeline must never take the worker (and
        // with it the daemon) down: surface it as `internal_error` and
        // keep serving.
        let line = catch_unwind(AssertUnwindSafe(|| process_plan(inner, &job))).unwrap_or_else(
            |payload| {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "pipeline panicked".to_string());
                inner.plans_errored.fetch_add(1, Ordering::Relaxed);
                WireResponse::Error {
                    id: job.request.id,
                    code: "internal_error".to_string(),
                    message,
                }
                .to_line_v(job.request.v)
            },
        );
        let abandoned = {
            let mut busy = lock_safe(&state.busy);
            let abandoned = busy.as_ref().is_some_and(|b| b.abandoned);
            *busy = None;
            abandoned
        };
        if abandoned {
            // The watcher already answered this request, released its
            // in-flight accounting, and spawned a replacement worker —
            // this thread no longer exists as far as the pool knows.
            return;
        }
        job.slot.fill(line);
        lock_safe(&inner.queue).in_flight -= 1;
    }
}

/// The health watcher: scans the pool for workers stuck on one request
/// past the stall budget, fails that request with `worker_recycled`,
/// abandons the thread (it cannot be killed; it exits on its own if
/// the computation ever returns) and spawns a replacement so the pool
/// never shrinks. Exits once shutdown has drained the pool.
fn watcher_loop(inner: &Arc<Inner>, budget: Duration) {
    let tick = (budget / 4)
        .max(Duration::from_millis(10))
        .min(Duration::from_millis(200));
    loop {
        std::thread::sleep(tick);
        let members: Vec<Arc<WorkerState>> = lock_safe(&inner.pool).clone();
        if members.is_empty() && inner.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        for state in members {
            let stuck = {
                let mut busy = lock_safe(&state.busy);
                match busy.as_mut() {
                    Some(b) if !b.abandoned && b.started.elapsed() > budget => {
                        // Taking over under the busy lock is the
                        // handshake: the worker checks this flag under
                        // the same lock, so exactly one side fills the
                        // slot and decrements in_flight.
                        b.abandoned = true;
                        Some((
                            b.cancel.clone(),
                            Arc::clone(&b.slot),
                            b.request_id,
                            b.request_v,
                        ))
                    }
                    _ => None,
                }
            };
            let Some((cancel, slot, request_id, request_v)) = stuck else {
                continue;
            };
            // Best case the computation notices the cancellation at its
            // next cooperative check and the thread exits promptly;
            // worst case it stays wedged, detached, and harmless.
            cancel.cancel();
            slot.fill(
                WireResponse::from_error(request_id, &LcmmError::WorkerRecycled)
                    .to_line_v(request_v),
            );
            inner.plans_errored.fetch_add(1, Ordering::Relaxed);
            inner.recycled.fetch_add(1, Ordering::Relaxed);
            lock_safe(&inner.queue).in_flight -= 1;
            leave_pool(inner, state.id);
            spawn_worker(inner);
        }
    }
}

/// Key prefix of cached co-plans — the namespace registry changes
/// invalidate.
const COPLAN_KEY_PREFIX: &str = "coplan:";

/// Digest of a canonical fingerprint string. Two hex-encoded FNV-1a
/// passes with independent offsets make accidental collisions (~2⁻¹²⁸)
/// a non-concern while keeping keys small even for inline
/// thousand-node graphs.
fn digest(fingerprint: &str) -> String {
    let fnv = |offset: u64| -> u64 {
        let mut hash = offset;
        for byte in fingerprint.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    };
    format!(
        "{:016x}{:016x}:{}",
        fnv(0xcbf2_9ce4_8422_2325),
        fnv(0x6c62_272e_07bb_0142),
        fingerprint.len()
    )
}

/// Cache key of a single-model plan: digest of the canonical JSON
/// fingerprint of the resolved request.
fn cache_key(resolved: &ResolvedPlan) -> String {
    let fingerprint = format!(
        "{}\u{1}{}\u{1}{}\u{1}{}",
        serde_json::to_string(&resolved.graph).unwrap_or_default(),
        serde_json::to_string(&resolved.device).unwrap_or_default(),
        serde_json::to_string(&resolved.precision).unwrap_or_default(),
        serde_json::to_string(&resolved.options).unwrap_or_default(),
    );
    digest(&fingerprint)
}

/// Cache key of a co-plan: covers the *full tenant set* — every
/// registered model's name, graph, precision, weight and share — plus
/// the device and options, so any registry change resolves to a new
/// key (a forced miss) even before the explicit prefix invalidation
/// reclaims the stale entries.
fn coplan_cache_key(
    registry: &[(String, Registered)],
    device: &Device,
    opts: &CoplanOptions,
) -> String {
    let mut fingerprint = String::new();
    for (name, r) in registry {
        fingerprint.push_str(&format!(
            "{}\u{1}{}\u{1}{}\u{1}{}\u{1}{:?}\u{2}",
            name,
            serde_json::to_string(&r.graph).unwrap_or_default(),
            serde_json::to_string(&r.precision).unwrap_or_default(),
            r.weight,
            r.share,
        ));
    }
    fingerprint.push_str(&format!(
        "{}\u{1}{}",
        serde_json::to_string(device).unwrap_or_default(),
        serde_json::to_string(opts).unwrap_or_default(),
    ));
    format!("{COPLAN_KEY_PREFIX}{}", digest(&fingerprint))
}

/// The routed slice of a co-plan summary: the entry of `tenants` whose
/// `model` field is `model`.
fn tenant_slice(summary: &Value, model: &str) -> Option<Value> {
    match summary.get("tenants")? {
        Value::Seq(items) => items
            .iter()
            .find(|t| t.get("model").and_then(Value::as_str) == Some(model))
            .cloned(),
        _ => None,
    }
}

/// Runs one admitted plan request to a response line.
fn process_plan(inner: &Arc<Inner>, job: &Job) -> String {
    let request = &job.request;
    let answer_err = |err: &LcmmError| {
        inner.plans_errored.fetch_add(1, Ordering::Relaxed);
        WireResponse::from_error(request.id, err).to_line_v(request.v)
    };
    // Deadline may already have passed while the job sat in the queue.
    if let Err(err) = job.cancel.check() {
        return answer_err(&err);
    }
    if inner.debug_hooks {
        if let Some(GraphSpec::Named(name)) = &request.graph {
            if let Some(hook) = name.strip_prefix("debug:") {
                return run_debug_hook(inner, job, hook);
            }
        }
    }
    if matches!(request.op, Op::Coplan | Op::Route) {
        return process_coplan(inner, job);
    }
    if request.op == Op::Workload {
        return process_workload(inner, job);
    }
    let resolved = match request.resolve_plan() {
        Ok(resolved) => resolved,
        Err(err) => return answer_err(&err),
    };
    if let Err(err) = job.cancel.check() {
        return answer_err(&err);
    }
    let key = cache_key(&resolved);
    if let Some(stored) = inner.cache.get(&key) {
        let plan = match serde_json::from_str::<Value>(&stored) {
            Ok(plan) => plan,
            Err(_) => Value::Str(stored),
        };
        inner.plans_completed.fetch_add(1, Ordering::Relaxed);
        return WireResponse::Plan {
            id: request.id,
            plan,
            cached: true,
            pass_stats: None,
        }
        .to_line_v(request.v);
    }
    let design =
        match inner
            .harness
            .try_design(&resolved.graph, &resolved.device, resolved.precision)
        {
            Ok(design) => design,
            Err(err) => return answer_err(&err),
        };
    let umm = inner.harness.baseline_from_design(&resolved.graph, &design);
    let result = match inner.harness.try_lcmm_with_design(
        &resolved.graph,
        &design,
        resolved.options,
        Some(&job.cancel),
    ) {
        Ok(result) => result,
        Err(err) => return answer_err(&err),
    };
    record_pass_stats(inner, &result.stats);
    let plan = plan_summary(&resolved, &result, &umm);
    let stored = serde_json::to_string(&plan).expect("plan summary serialises");
    let record = WalRecord::PlanPut {
        key: key.clone(),
        value: stored.clone(),
        tags: Vec::new(),
    };
    durably(inner, || (inner.cache.put(key, stored), Some(record)));
    inner.plans_completed.fetch_add(1, Ordering::Relaxed);
    WireResponse::Plan {
        id: request.id,
        plan,
        cached: false,
        pass_stats: request
            .include_stats
            .then(|| pass_stats_value(&result.stats)),
    }
    .to_line_v(request.v)
}

/// Executes one `debug:` fault-injection hook (only reachable when
/// [`ServerConfig::debug_hooks`] is on): `debug:panic` panics inside
/// the worker, `debug:poison` genuinely poisons the histograms lock
/// before panicking, `debug:stall:<ms>` busy-waits (cooperatively
/// cancellable) to trip the health watcher.
fn run_debug_hook(inner: &Arc<Inner>, job: &Job, hook: &str) -> String {
    let request = &job.request;
    if hook == "panic" {
        panic!("debug hook: injected worker panic");
    }
    if hook == "poison" {
        // Poison the histograms mutex from a scratch thread, then
        // panic in this worker too. Subsequent stats requests only
        // survive because every lock site recovers from poisoning —
        // exactly the regression this hook exists to catch.
        let poisoned = Arc::clone(inner);
        let _ = std::thread::spawn(move || {
            let _guard = poisoned.histograms.lock();
            panic!("debug hook: poisoning the histograms lock");
        })
        .join();
        panic!("debug hook: injected panic after poisoning");
    }
    if let Some(ms) = hook
        .strip_prefix("stall:")
        .and_then(|v| v.parse::<u64>().ok())
    {
        let until = Instant::now() + Duration::from_millis(ms);
        while Instant::now() < until {
            if job.cancel.is_cancelled() {
                // Recycled (or expired): the slot was already answered,
                // this line is discarded by the idempotent fill.
                return WireResponse::from_error(request.id, &LcmmError::Cancelled)
                    .to_line_v(request.v);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        inner.plans_completed.fetch_add(1, Ordering::Relaxed);
        return WireResponse::Plan {
            id: request.id,
            plan: Value::Map(vec![(
                "debug".to_string(),
                Value::Str(format!("stalled {ms}ms")),
            )]),
            cached: false,
            pass_stats: None,
        }
        .to_line_v(request.v);
    }
    inner.plans_errored.fetch_add(1, Ordering::Relaxed);
    WireResponse::from_error(
        request.id,
        &LcmmError::InvalidRequest(format!("unknown debug hook {hook:?}")),
    )
    .to_line_v(request.v)
}

/// Runs one admitted co-plan or route request to a response line.
///
/// Both compute (or replay from cache) the co-plan of the *entire*
/// current registry; a route then answers with just the named tenant's
/// slice of it. The cached payload is always the full summary, so a
/// co-plan and the routes against it share one entry.
fn process_coplan(inner: &Arc<Inner>, job: &Job) -> String {
    let request = &job.request;
    let answer_err = |err: &LcmmError| {
        inner.plans_errored.fetch_add(1, Ordering::Relaxed);
        WireResponse::from_error(request.id, err).to_line_v(request.v)
    };
    let registry: Vec<(String, Registered)> = {
        let registry = lock_safe(&inner.registry);
        registry
            .iter()
            .map(|(name, r)| (name.clone(), r.clone()))
            .collect()
    };
    if registry.is_empty() {
        return answer_err(&LcmmError::InvalidRequest(
            "no models registered; register tenants before co-planning".to_string(),
        ));
    }
    let route_model = match request.op {
        Op::Route => match request.model.as_deref().filter(|m| !m.is_empty()) {
            Some(m) if registry.iter().any(|(name, _)| name == m) => Some(m.to_string()),
            Some(m) => return answer_err(&LcmmError::UnknownModel(m.to_string())),
            None => {
                return answer_err(&LcmmError::InvalidRequest(
                    "route needs a non-empty \"model\" field".to_string(),
                ))
            }
        },
        _ => None,
    };
    let device_name = request.device.as_deref().unwrap_or("vu9p");
    let Some(device) = Device::by_name(device_name) else {
        return answer_err(&LcmmError::UnknownDevice(device_name.to_string()));
    };
    let options = match request.resolve_options() {
        Ok(options) => options,
        Err(err) => return answer_err(&err),
    };
    let opts = CoplanOptions::default().with_options(options);
    let key = coplan_cache_key(&registry, &device, &opts);
    if let Some(stored) = inner.cache.get(&key) {
        let full: Value = match serde_json::from_str(&stored) {
            Ok(full) => full,
            Err(_) => Value::Str(stored),
        };
        let plan = match &route_model {
            Some(m) => match tenant_slice(&full, m) {
                Some(slice) => slice,
                None => {
                    return answer_err(&LcmmError::UnknownModel(m.clone()));
                }
            },
            None => full,
        };
        inner.plans_completed.fetch_add(1, Ordering::Relaxed);
        return WireResponse::Plan {
            id: request.id,
            plan,
            cached: true,
            pass_stats: None,
        }
        .to_line_v(request.v);
    }
    if let Err(err) = job.cancel.check() {
        return answer_err(&err);
    }
    let tenants: Vec<TenantSpec> = registry
        .iter()
        .map(|(name, r)| {
            let mut tenant =
                TenantSpec::new(name.clone(), r.graph.clone(), r.precision).with_weight(r.weight);
            if let Some(share) = r.share {
                tenant = tenant.with_share(share);
            }
            tenant
        })
        .collect();
    let plan = match coplan(&inner.harness, &device, &tenants, &opts) {
        Ok(plan) => plan,
        Err(err) => return answer_err(&err),
    };
    let summary = coplan_summary(&plan);
    let stored = serde_json::to_string(&summary).expect("co-plan summary serialises");
    let tags: Vec<String> = registry.iter().map(|(name, _)| model_tag(name)).collect();
    let record = WalRecord::PlanPut {
        key: key.clone(),
        value: stored.clone(),
        tags: tags.clone(),
    };
    durably(inner, || {
        (inner.cache.put_tagged(key, stored, tags), Some(record))
    });
    inner.plans_completed.fetch_add(1, Ordering::Relaxed);
    let payload = match &route_model {
        Some(m) => tenant_slice(&summary, m).expect("routed model is a tenant"),
        None => summary,
    };
    WireResponse::Plan {
        id: request.id,
        plan: payload,
        cached: false,
        pass_stats: None,
    }
    .to_line_v(request.v)
}

/// Key prefix of cached workload reports.
const WORKLOAD_KEY_PREFIX: &str = "workload:";

/// Runs one admitted workload-simulation request to a response line.
///
/// The report is a pure function of the request (the simulator is
/// seeded and the grid search deterministic), so inline traces cache
/// like plans do. File-based traces are *never* cached: the path says
/// nothing about the file's contents, and a stale replay after an
/// edited trace would be silently wrong.
fn process_workload(inner: &Arc<Inner>, job: &Job) -> String {
    let request = &job.request;
    let answer_err = |err: &LcmmError| {
        inner.plans_errored.fetch_add(1, Ordering::Relaxed);
        WireResponse::from_error(request.id, err).to_line_v(request.v)
    };
    let Some(models) = request.models.as_deref().filter(|m| !m.is_empty()) else {
        return answer_err(&LcmmError::InvalidRequest(
            "workload needs a non-empty \"models\" field (comma-separated zoo names)".to_string(),
        ));
    };
    let precision =
        match crate::protocol::parse_precision(request.precision.as_deref().unwrap_or("fix16")) {
            Ok(precision) => precision,
            Err(err) => return answer_err(&err),
        };
    let mut tenants = Vec::new();
    for name in models.split(',').map(str::trim) {
        let Some(graph) = lcmm_graph::zoo::by_name(name) else {
            return answer_err(&LcmmError::UnknownModel(name.to_string()));
        };
        tenants.push(TenantSpec::new(name.to_string(), graph, precision));
    }
    let device_name = request.device.as_deref().unwrap_or("vu9p");
    let Some(device) = Device::by_name(device_name) else {
        return answer_err(&LcmmError::UnknownDevice(device_name.to_string()));
    };
    let options = match request.resolve_options() {
        Ok(options) => options,
        Err(err) => return answer_err(&err),
    };
    let steps = request.steps.unwrap_or(4).clamp(2, 64) as usize;
    let opts = CoplanOptions::default()
        .with_options(options)
        .with_search_steps(steps);
    let trace = request.trace.as_deref().unwrap_or("bursty2");
    let controller = ControllerConfig::default().with_enabled(request.controller.unwrap_or(true));
    let cacheable = trace == "bursty2" || trace.contains(':');
    let key = cacheable.then(|| {
        let fingerprint = format!(
            "{models}\u{1}{}\u{1}{}\u{1}{}\u{1}{trace}\u{1}{}\u{1}{steps}",
            serde_json::to_string(&precision).unwrap_or_default(),
            serde_json::to_string(&device).unwrap_or_default(),
            serde_json::to_string(&opts.options).unwrap_or_default(),
            controller.enabled,
        );
        format!("{WORKLOAD_KEY_PREFIX}{}", digest(&fingerprint))
    });
    if let Some(stored) = key.as_ref().and_then(|k| inner.cache.get(k)) {
        let plan = match serde_json::from_str::<Value>(&stored) {
            Ok(plan) => plan,
            Err(_) => Value::Str(stored),
        };
        inner.plans_completed.fetch_add(1, Ordering::Relaxed);
        return WireResponse::Plan {
            id: request.id,
            plan,
            cached: true,
            pass_stats: None,
        }
        .to_line_v(request.v);
    }
    if let Err(err) = job.cancel.check() {
        return answer_err(&err);
    }
    let report = match lcmm_workload::run_workload(
        &inner.harness,
        &device,
        &tenants,
        trace,
        &controller,
        &opts,
    ) {
        Ok(report) => report,
        Err(err) => return answer_err(&err),
    };
    if let Some(key) = key {
        let stored = serde_json::to_string(&report).expect("workload report serialises");
        let record = WalRecord::PlanPut {
            key: key.clone(),
            value: stored.clone(),
            tags: Vec::new(),
        };
        durably(inner, || (inner.cache.put(key, stored), Some(record)));
    }
    inner.plans_completed.fetch_add(1, Ordering::Relaxed);
    WireResponse::Plan {
        id: request.id,
        plan: report,
        cached: false,
        pass_stats: None,
    }
    .to_line_v(request.v)
}

/// Folds one computed run's pass timings into the `/stats` histograms.
fn record_pass_stats(inner: &Inner, stats: &PassStats) {
    let mut h = lock_safe(&inner.histograms);
    h.liveness.record(stats.liveness_seconds);
    h.prefetch.record(stats.prefetch_seconds);
    h.alloc_split.record(stats.alloc_split_seconds);
    h.total.record(stats.total_seconds);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_of(line: &str) -> Value {
        let v: Value = serde_json::from_str(line).expect("response is JSON");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{line}");
        v.get("plan").cloned().expect("plan payload")
    }

    #[test]
    fn plans_ping_stats_and_shutdown() {
        let server = Server::start(ServerConfig::default().with_workers(2));
        assert_eq!(
            server.handle_line(r#"{"op":"ping","id":1}"#),
            r#"{"id":1,"ok":true,"pong":true}"#
        );
        let first = server.handle_line(r#"{"graph":"alexnet"}"#);
        let plan = plan_of(&first);
        assert_eq!(plan.get("model").and_then(Value::as_str), Some("alexnet"));
        let stats_line = server.handle_line(r#"{"op":"stats"}"#);
        let stats: Value = serde_json::from_str(&stats_line).unwrap();
        let requests = stats.get("stats").and_then(|s| s.get("requests")).unwrap();
        assert_eq!(requests.get("completed").and_then(Value::as_u64), Some(1));
        let ack = server.handle_line(r#"{"op":"shutdown"}"#);
        assert!(ack.contains("\"shutdown\":true"));
        server.shutdown();
        // After shutdown, plans are refused but the handle still answers.
        let refused = server.handle_line(r#"{"graph":"alexnet"}"#);
        assert!(refused.contains("shutting_down"), "{refused}");
    }

    #[test]
    fn duplicate_plans_are_byte_identical_cache_hits() {
        let server = Server::start(ServerConfig::default().with_workers(2));
        let line = r#"{"graph":"alexnet","precision":"8"}"#;
        let first = server.handle_line(line);
        let second = server.handle_line(line);
        let third = server.handle_line(line);
        assert!(first.contains("\"cached\":false"));
        assert!(second.contains("\"cached\":true"));
        assert_eq!(second, third, "two cache hits are byte-identical");
        assert_eq!(plan_of(&first), plan_of(&second));
        server.shutdown();
    }

    #[test]
    fn bad_requests_do_not_kill_the_daemon() {
        let server = Server::start(ServerConfig::default().with_workers(1));
        let garbage = server.handle_line("][");
        assert!(garbage.contains("bad_request"));
        let model = server.handle_line(r#"{"graph":"not-a-net"}"#);
        assert!(model.contains("unknown_model"));
        let device = server.handle_line(r#"{"graph":"alexnet","device":"gpu"}"#);
        assert!(device.contains("unknown_device"));
        // Still serving after three failures.
        let ok = server.handle_line(r#"{"graph":"alexnet"}"#);
        assert!(ok.contains("\"ok\":true"));
        server.shutdown();
    }

    #[test]
    fn registry_mutations_acknowledge_and_validate() {
        let server = Server::start(ServerConfig::default().with_workers(1));
        let ack = server.handle_line(r#"{"op":"register","model":"a","graph":"alexnet","id":1}"#);
        assert_eq!(
            ack,
            r#"{"action":"register","id":1,"model":"a","models":1,"ok":true}"#
        );
        // Re-registering overwrites in place: still one model.
        let again = server
            .handle_line(r#"{"op":"register","model":"a","graph":"squeezenet","weight":2.0}"#);
        assert!(again.contains("\"models\":1"), "{again}");
        // Bad registrations are typed errors.
        let missing = server.handle_line(r#"{"op":"register","graph":"alexnet"}"#);
        assert!(missing.contains("bad_request"), "{missing}");
        let model = server.handle_line(r#"{"op":"register","model":"b","graph":"nope"}"#);
        assert!(model.contains("unknown_model"), "{model}");
        let share =
            server.handle_line(r#"{"op":"register","model":"b","graph":"alexnet","share":1.5}"#);
        assert!(share.contains("bad_request"), "{share}");
        // Unregister removes; a second attempt is unknown.
        let gone = server.handle_line(r#"{"op":"unregister","model":"a"}"#);
        assert_eq!(
            gone,
            r#"{"action":"unregister","model":"a","models":0,"ok":true}"#
        );
        let repeat = server.handle_line(r#"{"op":"unregister","model":"a"}"#);
        assert!(repeat.contains("unknown_model"), "{repeat}");
        server.shutdown();
    }

    #[test]
    fn coplan_routes_and_replays_from_cache() {
        let server = Server::start(ServerConfig::default().with_workers(2));
        // No tenants yet: co-planning is a typed error.
        let empty = server.handle_line(r#"{"op":"coplan"}"#);
        assert!(empty.contains("bad_request"), "{empty}");
        // Explicit shares keep the test off the (slower) split search.
        server.handle_line(r#"{"op":"register","model":"axn","graph":"alexnet","share":0.5}"#);
        server.handle_line(r#"{"op":"register","model":"sqz","graph":"squeezenet","share":0.5}"#);
        let first = server.handle_line(r#"{"op":"coplan"}"#);
        assert!(first.contains("\"cached\":false"), "{first}");
        let replay = server.handle_line(r#"{"op":"coplan"}"#);
        assert!(replay.contains("\"cached\":true"), "{replay}");
        // Routing shares the cached entry and answers one tenant's slice.
        let routed = server.handle_line(r#"{"op":"route","model":"sqz"}"#);
        assert!(routed.contains("\"cached\":true"), "{routed}");
        assert!(routed.contains("\"model\":\"sqz\""), "{routed}");
        assert!(!routed.contains("\"model\":\"axn\""), "{routed}");
        let unknown = server.handle_line(r#"{"op":"route","model":"vgg"}"#);
        assert!(unknown.contains("unknown_model"), "{unknown}");
        server.shutdown();
    }

    #[test]
    fn expired_deadline_times_out() {
        let server = Server::start(ServerConfig::default().with_workers(1));
        // A large unique synthetic graph with a 1 ms budget cannot finish.
        let line = r#"{"graph":"synthetic:1024x4x99","deadline_ms":0}"#;
        let resp = server.handle_line(line);
        assert!(resp.contains("\"code\":\"timeout\""), "{resp}");
        server.shutdown();
    }

    #[test]
    fn async_handle_replies_through_the_callback() {
        let server = Server::start(ServerConfig::default().with_workers(2));
        let (tx, rx) = std::sync::mpsc::channel();
        // Inline op: callback fires before handle_line_async returns.
        let tx2 = tx.clone();
        server.handle_line_async(
            r#"{"op":"ping","id":7}"#,
            Box::new(move |line| tx2.send(line).unwrap()),
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            r#"{"id":7,"ok":true,"pong":true}"#
        );
        // Queued plan: callback fires from a worker thread.
        server.handle_line_async(
            r#"{"graph":"alexnet"}"#,
            Box::new(move |line| tx.send(line).unwrap()),
        );
        let line = rx.recv_timeout(Duration::from_secs(60)).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        server.shutdown();
    }
}
