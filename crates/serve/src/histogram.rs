//! Latency histograms for the `/stats` report.
//!
//! The implementation moved to [`lcmm_workload::histogram`] so the
//! workload simulator can accumulate per-request latencies with the
//! same buckets; this module re-exports it to keep
//! `lcmm_serve::LatencyHistogram` (and `lcmm_serve::histogram`) a
//! stable path.

pub use lcmm_workload::histogram::LatencyHistogram;
