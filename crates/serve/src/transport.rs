//! Line-oriented transports: stdin/stdout (tests, pipelines) over the
//! blocking [`Server::handle_line`], and TCP / Unix-socket serving via
//! a readiness-polled event loop over [`Server::handle_line_async`].
//!
//! The event loop replaces the old thread-per-connection design. One
//! transport thread owns every socket: it accepts non-blockingly,
//! reads whatever bytes are available into per-connection buffers,
//! hands complete lines to the server (which answers inline or from a
//! worker thread through a completion channel), and writes responses
//! back as sockets accept them. A slow, stalled, or disconnected
//! client therefore costs a buffer, not a thread — and a write error
//! tears down that one connection, never the acceptor.
//!
//! Backpressure is per client, in both directions: a connection with
//! `MAX_PIPELINE` requests in flight or more than `SOFT_WRITE_CAP`
//! unsent response bytes is not read from until it drains, and one
//! that ignores its responses past `HARD_WRITE_CAP` is dropped.
//!
//! All loops end the same way: a `{"op":"shutdown"}` request (or input
//! EOF on stdio) flips the server into draining mode, in-flight work
//! finishes and is flushed to its clients, workers join, and the
//! function returns.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::mpsc;
use std::time::Duration;

use crate::server::{Server, ServerConfig};

/// How long the event loop parks waiting for completions before
/// re-polling sockets. Bounds idle latency, not request latency —
/// completions wake the loop immediately through the channel.
const TICK: Duration = Duration::from_millis(2);

/// Requests one connection may have in flight before the loop stops
/// reading from it.
const MAX_PIPELINE: u64 = 128;

/// Unsent response bytes above which a connection is not read from.
const SOFT_WRITE_CAP: usize = 1 << 20;

/// Unsent response bytes above which a client is judged dead-slow and
/// dropped.
const HARD_WRITE_CAP: usize = 8 << 20;

/// Longest accepted request line; protects the per-connection read
/// buffer from a peer that never sends a newline.
const MAX_LINE: usize = 8 << 20;

/// Serves JSON-lines over stdin/stdout until EOF or a shutdown request.
/// Requests are answered in input order.
///
/// # Errors
///
/// Propagates stdin/stdout I/O failures and WAL startup failures.
pub fn serve_stdio(config: ServerConfig) -> io::Result<()> {
    let server = Server::try_start(config)?;
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = server.handle_line(&line);
        writeln!(out, "{response}")?;
        out.flush()?;
        if server.is_shutting_down() {
            break;
        }
    }
    server.shutdown();
    Ok(())
}

/// Serves JSON-lines over TCP. Binds `addr` (use port 0 for an
/// ephemeral port) and prints one `listening <addr>` line to stdout so
/// callers can discover the bound address. All connections share the
/// event-loop thread; requests on one connection are answered in order.
///
/// # Errors
///
/// Propagates bind failures and WAL startup failures.
pub fn serve_tcp(config: ServerConfig, addr: &str) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    println!("listening {}", listener.local_addr()?);
    io::stdout().flush()?;
    serve_tcp_listener(config, listener)
}

/// [`serve_tcp`] over an already-bound listener — tests bind port 0
/// themselves to learn the address without parsing stdout.
///
/// # Errors
///
/// Propagates listener configuration and WAL startup failures.
pub fn serve_tcp_listener(config: ServerConfig, listener: TcpListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let server = Server::try_start(config)?;
    event_loop(&server, &|| match listener.accept() {
        Ok((stream, _)) => {
            stream.set_nonblocking(true)?;
            Ok(Some(Box::new(stream) as Box<dyn Stream>))
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
        Err(e) => Err(e),
    });
    server.shutdown();
    Ok(())
}

/// Serves JSON-lines over a Unix domain socket at `path` (an existing
/// stale socket file is removed first, and the file is unlinked again
/// on exit).
///
/// # Errors
///
/// Propagates bind failures and WAL startup failures.
pub fn serve_unix(config: ServerConfig, path: &Path) -> io::Result<()> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    println!("listening {}", path.display());
    io::stdout().flush()?;
    let server = Server::try_start(config)?;
    event_loop(&server, &|| match listener.accept() {
        Ok((stream, _)) => {
            stream.set_nonblocking(true)?;
            Ok(Some(Box::new(stream) as Box<dyn Stream>))
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
        Err(e) => Err(e),
    });
    server.shutdown();
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// The two stream types, unified for the event loop. Streams are
/// switched to non-blocking before entering the loop.
trait Stream: io::Read + io::Write + Send {}

impl Stream for TcpStream {}
impl Stream for UnixStream {}

/// One live connection's event-loop state.
struct Connection {
    stream: Box<dyn Stream>,
    /// Bytes received but not yet terminated by `\n`.
    read_buf: Vec<u8>,
    /// Response bytes accepted from the server but not yet written.
    write_buf: Vec<u8>,
    /// Sequence number assigned to the next request read off this
    /// connection. Responses are released strictly in this order, so
    /// pipelined requests answered out of order by the worker pool
    /// still reach the client in request order.
    next_seq: u64,
    /// Sequence number of the next response to release.
    next_send: u64,
    /// Completed responses waiting for their turn in the order.
    ready: BTreeMap<u64, String>,
    /// Peer sent EOF; drain what is owed, then drop.
    read_closed: bool,
    /// Tear down at the end of the tick (write error, overflow).
    dead: bool,
}

impl Connection {
    fn new(stream: Box<dyn Stream>) -> Self {
        Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            next_seq: 0,
            next_send: 0,
            ready: BTreeMap::new(),
            read_closed: false,
            dead: false,
        }
    }

    /// Requests read but not yet released to the write buffer.
    fn in_flight(&self) -> u64 {
        self.next_seq - self.next_send
    }

    /// True when nothing is owed to the peer any more.
    fn drained(&self) -> bool {
        self.in_flight() == 0 && self.write_buf.is_empty()
    }

    /// Moves consecutively-ready responses into the write buffer.
    fn release_ready(&mut self) {
        while let Some(line) = self.ready.remove(&self.next_send) {
            self.write_buf.extend_from_slice(line.as_bytes());
            self.write_buf.push(b'\n');
            self.next_send += 1;
        }
    }

    /// Writes as much of the write buffer as the socket accepts.
    /// Returns `false` on a fatal write error — which kills *this*
    /// connection only.
    fn flush_some(&mut self) -> bool {
        let mut written = 0;
        while written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[written..]) {
                Ok(0) => break,
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.write_buf.drain(..written);
                    return false;
                }
            }
        }
        self.write_buf.drain(..written);
        true
    }
}

/// A completed response travelling from whichever thread finished it
/// (the event loop itself for inline ops, a worker, the health watcher,
/// or shutdown) back to the event loop: `(connection, seq, line)`.
type Completion = (u64, u64, String);

/// The readiness-polled serving loop: one thread, every socket.
///
/// `accept` returns `Ok(None)` when no connection is pending. The loop
/// runs until the server enters shutdown *and* every connection has
/// been paid what it is owed (so the response to the shutdown request
/// itself, and anything in flight, still reaches its client).
fn event_loop(server: &Server, accept: &dyn Fn() -> io::Result<Option<Box<dyn Stream>>>) {
    let (tx, rx) = mpsc::channel::<Completion>();
    let mut conns: HashMap<u64, Connection> = HashMap::new();
    let mut next_conn_id: u64 = 0;
    let mut scratch = [0u8; 64 * 1024];
    loop {
        let mut active = false;
        // 1. Admit new connections (unless draining).
        if !server.is_shutting_down() {
            while let Ok(Some(stream)) = accept() {
                conns.insert(next_conn_id, Connection::new(stream));
                next_conn_id += 1;
                active = true;
            }
        }
        // 2. Collect completed responses. Completions for connections
        // that died in the meantime are discarded.
        while let Ok((conn_id, seq, line)) = rx.try_recv() {
            if let Some(conn) = conns.get_mut(&conn_id) {
                conn.ready.insert(seq, line);
                conn.release_ready();
            }
            active = true;
        }
        // 3. Pump every socket: write what is owed, read what is
        // offered, respecting per-client backpressure.
        for (&conn_id, conn) in &mut conns {
            if conn.dead {
                continue;
            }
            let before = conn.write_buf.len();
            if !conn.flush_some() {
                // The write-error bugfix: a disconnected client kills
                // its own connection, never the serving loop.
                conn.dead = true;
                continue;
            }
            active |= conn.write_buf.len() != before;
            if conn.write_buf.len() > HARD_WRITE_CAP {
                conn.dead = true;
                continue;
            }
            let throttled = conn.in_flight() >= MAX_PIPELINE
                || conn.write_buf.len() > SOFT_WRITE_CAP
                || conn.read_closed;
            if throttled {
                continue;
            }
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        active = true;
                        conn.read_buf.extend_from_slice(&scratch[..n]);
                        if conn.read_buf.len() > MAX_LINE {
                            conn.dead = true;
                        }
                        break; // process what we have; read again next tick
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.dead {
                continue;
            }
            // Split complete lines out of the read buffer and hand them
            // to the server; responses come back through the channel in
            // whatever order they finish and are re-sequenced above.
            while let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') {
                let raw: Vec<u8> = conn.read_buf.drain(..=pos).collect();
                let line = String::from_utf8_lossy(&raw[..pos]).into_owned();
                if line.trim().is_empty() {
                    continue;
                }
                let seq = conn.next_seq;
                conn.next_seq += 1;
                let tx = tx.clone();
                server.handle_line_async(
                    &line,
                    Box::new(move |response| {
                        // The loop may have exited already; then nobody
                        // is listening and the send result is moot.
                        let _ = tx.send((conn_id, seq, response));
                    }),
                );
                active = true;
            }
        }
        // 4. Reap: dead connections immediately, half-closed ones once
        // every owed response has been flushed.
        conns.retain(|_, conn| !(conn.dead || conn.read_closed && conn.drained()));
        // 5. Exit once draining is complete.
        if server.is_shutting_down() && conns.values().all(Connection::drained) {
            return;
        }
        // 6. Park until a completion arrives or the next poll tick.
        if !active {
            if let Ok((conn_id, seq, line)) = rx.recv_timeout(TICK) {
                if let Some(conn) = conns.get_mut(&conn_id) {
                    conn.ready.insert(seq, line);
                    conn.release_ready();
                }
            }
        }
    }
}
