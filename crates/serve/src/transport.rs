//! Line-oriented transports over the transport-independent
//! [`Server::handle_line`]: stdin/stdout (tests, pipelines), TCP, and
//! Unix domain sockets.
//!
//! All three loops end the same way: a `{"op":"shutdown"}` request (or
//! input EOF on stdio) flips the server into draining mode, queued work
//! finishes, workers join, and the function returns.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::Duration;

use crate::server::{Server, ServerConfig};

/// How long the accept and read loops sleep/block between polls of the
/// shutdown flag. Bounds shutdown latency, not request latency.
const POLL: Duration = Duration::from_millis(25);

/// Serves JSON-lines over stdin/stdout until EOF or a shutdown request.
/// Requests are answered in input order.
///
/// # Errors
///
/// Propagates stdin/stdout I/O failures.
pub fn serve_stdio(config: ServerConfig) -> io::Result<()> {
    let server = Server::start(config);
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = server.handle_line(&line);
        writeln!(out, "{response}")?;
        out.flush()?;
        if server.is_shutting_down() {
            break;
        }
    }
    server.shutdown();
    Ok(())
}

/// Serves JSON-lines over TCP. Binds `addr` (use port 0 for an
/// ephemeral port) and prints one `listening <addr>` line to stdout so
/// callers can discover the bound address. Each connection is handled
/// on its own thread; requests on one connection are answered in order.
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_tcp(config: ServerConfig, addr: &str) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    println!("listening {}", listener.local_addr()?);
    io::stdout().flush()?;
    let server = Server::start(config);
    accept_loop(&server, || match listener.accept() {
        Ok((stream, _)) => Some(Box::new(stream) as Box<dyn Conn>),
        Err(_) => None,
    });
    server.shutdown();
    Ok(())
}

/// Serves JSON-lines over a Unix domain socket at `path` (an existing
/// stale socket file is removed first, and the file is unlinked again
/// on exit).
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_unix(config: ServerConfig, path: &Path) -> io::Result<()> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    println!("listening {}", path.display());
    io::stdout().flush()?;
    let server = Server::start(config);
    accept_loop(&server, || match listener.accept() {
        Ok((stream, _)) => Some(Box::new(stream) as Box<dyn Conn>),
        Err(_) => None,
    });
    server.shutdown();
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// The two stream types, unified for [`handle_conn`].
trait Conn: io::Read + io::Write + Send {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>>;
    fn set_read_timeout_conn(&self, timeout: Duration) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_read_timeout_conn(&self, timeout: Duration) -> io::Result<()> {
        self.set_nonblocking(false)?;
        self.set_read_timeout(Some(timeout))
    }
}

impl Conn for UnixStream {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_read_timeout_conn(&self, timeout: Duration) -> io::Result<()> {
        self.set_nonblocking(false)?;
        self.set_read_timeout(Some(timeout))
    }
}

/// Accepts connections until shutdown. Handlers are joined by the
/// enclosing thread scope; their read timeouts guarantee they notice
/// the shutdown flag within one [`POLL`] tick even on idle connections,
/// so the join cannot hang.
fn accept_loop(server: &Server, mut accept: impl FnMut() -> Option<Box<dyn Conn>>) {
    std::thread::scope(|scope| {
        while !server.is_shutting_down() {
            match accept() {
                Some(conn) => {
                    let server = server.clone();
                    scope.spawn(move || {
                        let _ = handle_conn(&server, conn);
                    });
                }
                None => std::thread::sleep(POLL),
            }
        }
    });
}

/// One connection: read request lines, write response lines, until the
/// peer closes or the server shuts down. Read timeouts make the loop a
/// shutdown-flag poll; a partially read line survives timeouts because
/// `read_line` appends into the same buffer across retries.
fn handle_conn(server: &Server, conn: Box<dyn Conn>) -> io::Result<()> {
    conn.set_read_timeout_conn(POLL)?;
    let mut writer = conn.try_clone_conn()?;
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {
                if !line.trim().is_empty() {
                    let response = server.handle_line(&line);
                    writer.write_all(response.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                }
                line.clear();
                if server.is_shutting_down() {
                    return Ok(());
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if server.is_shutting_down() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}
