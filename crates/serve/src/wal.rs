//! The write-ahead log behind a crash-safe daemon.
//!
//! The serve daemon's durable state is exactly what is expensive to
//! lose across a restart: the tenant registry and the plan/co-plan
//! cache. Both are mutated through [`WalRecord`]s appended here
//! *before* the in-memory state changes (redo-log discipline), so a
//! daemon restarted with the same `--wal-dir` replays the log and
//! warm-starts with the registry and cache it died with.
//!
//! ## On-disk format
//!
//! Two files live in the WAL directory:
//!
//! * `wal.log` — the append-only log. Each record is framed as
//!   `[len: u32 LE][checksum: u64 LE][payload: len bytes]` where the
//!   payload is the record's canonical JSON and the checksum is FNV-1a
//!   over the payload. A crash mid-append leaves a torn tail: replay
//!   stops at the first incomplete or checksum-failing frame and
//!   truncates the file back to the last good record.
//! * `wal.snapshot` — a compacted log: the full state (registry
//!   entries, then cache entries in LRU order) re-encoded as the same
//!   frames. Compaction writes `wal.snapshot.tmp`, fsyncs, and renames
//!   it into place — atomically on POSIX — then truncates `wal.log`.
//!   A crash between the rename and the truncate leaves records in the
//!   log that the snapshot already covers; replay applies them twice,
//!   which is why every record's application is idempotent.
//!
//! Startup replay is: snapshot frames first, then log frames.
//!
//! Fsync policy is a flag ([`FsyncPolicy`]): `always` pays one
//! `fdatasync` per record and loses nothing that was acknowledged;
//! `os` leaves flushing to the page cache and may lose the newest
//! records on power loss — replay still recovers a consistent prefix.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use serde_json::Value;

/// Name of the append-only log file inside the WAL directory.
const LOG_FILE: &str = "wal.log";
/// Name of the compacted snapshot file.
const SNAPSHOT_FILE: &str = "wal.snapshot";
/// Scratch name the snapshot is built under before the atomic rename.
const SNAPSHOT_TMP: &str = "wal.snapshot.tmp";
/// Bytes of each frame header: u32 length + u64 checksum.
const FRAME_HEADER: usize = 4 + 8;
/// Default log size that triggers compaction into a snapshot.
const DEFAULT_COMPACT_BYTES: u64 = 4 << 20;
/// Refuse to decode absurd frame lengths (a corrupt header would
/// otherwise ask for a multi-gigabyte allocation).
const MAX_RECORD_BYTES: u32 = 256 << 20;

/// When appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record: an acknowledged mutation
    /// survives power loss.
    Always,
    /// Leave flushing to the OS page cache (default): a crash of the
    /// daemon process alone loses nothing, power loss may lose the
    /// newest records. Replay still recovers a consistent prefix.
    #[default]
    Os,
}

impl FsyncPolicy {
    /// Parses a `--fsync` flag value.
    ///
    /// # Errors
    ///
    /// A usage message for anything but `always` / `os` / `off`.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "always" => Ok(FsyncPolicy::Always),
            "os" | "off" => Ok(FsyncPolicy::Os),
            other => Err(format!("unknown fsync policy {other:?} (use always or os)")),
        }
    }
}

/// One durable mutation of the daemon's state.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A model entered (or replaced its entry in) the tenant registry.
    Register {
        /// Registry key.
        model: String,
        /// The *resolved* graph in its canonical JSON encoding — replay
        /// must not depend on zoo names still resolving identically.
        graph_json: String,
        /// Canonical precision name (`fix8` / `fix16` / `float32`).
        precision: String,
        /// Objective weight of the tenant.
        weight: f64,
        /// Explicit compute share, if one was registered.
        share: Option<f64>,
    },
    /// A model left the registry.
    Unregister {
        /// Registry key.
        model: String,
    },
    /// A plan or co-plan entered the cache.
    PlanPut {
        /// Cache key (content digest, `coplan:`-prefixed for co-plans).
        key: String,
        /// The pre-serialized plan JSON the cache replays on hits.
        value: String,
        /// Invalidation tags (`model:<name>` per co-plan tenant).
        tags: Vec<String>,
    },
}

impl WalRecord {
    /// Canonical JSON payload of the record.
    fn encode(&self) -> String {
        let map = match self {
            WalRecord::Register {
                model,
                graph_json,
                precision,
                weight,
                share,
            } => {
                let mut fields = vec![
                    ("graph".to_string(), Value::Str(graph_json.clone())),
                    ("model".to_string(), Value::Str(model.clone())),
                    ("precision".to_string(), Value::Str(precision.clone())),
                    ("t".to_string(), Value::Str("reg".to_string())),
                    ("weight".to_string(), Value::F64(*weight)),
                ];
                if let Some(share) = share {
                    fields.push(("share".to_string(), Value::F64(*share)));
                }
                Value::Map(fields)
            }
            WalRecord::Unregister { model } => Value::Map(vec![
                ("model".to_string(), Value::Str(model.clone())),
                ("t".to_string(), Value::Str("unreg".to_string())),
            ]),
            WalRecord::PlanPut { key, value, tags } => Value::Map(vec![
                ("key".to_string(), Value::Str(key.clone())),
                ("t".to_string(), Value::Str("put".to_string())),
                (
                    "tags".to_string(),
                    Value::Seq(tags.iter().map(|t| Value::Str(t.clone())).collect()),
                ),
                ("value".to_string(), Value::Str(value.clone())),
            ]),
        };
        serde_json::to_string(&map).expect("wal record serialises")
    }

    /// Decodes one frame payload; `None` for structurally valid JSON
    /// that is not a known record (forward compatibility: unknown
    /// record types are skipped, not fatal).
    fn decode(payload: &str) -> Option<Self> {
        let v: Value = serde_json::from_str(payload).ok()?;
        let field = |name: &str| v.get(name).and_then(Value::as_str).map(str::to_string);
        match v.get("t").and_then(Value::as_str)? {
            "reg" => Some(WalRecord::Register {
                model: field("model")?,
                graph_json: field("graph")?,
                precision: field("precision")?,
                weight: v.get("weight").and_then(Value::as_f64)?,
                share: v.get("share").and_then(Value::as_f64),
            }),
            "unreg" => Some(WalRecord::Unregister {
                model: field("model")?,
            }),
            "put" => Some(WalRecord::PlanPut {
                key: field("key")?,
                value: field("value")?,
                tags: v
                    .get("tags")
                    .and_then(Value::as_array)?
                    .iter()
                    .filter_map(|t| t.as_str().map(str::to_string))
                    .collect(),
            }),
            _ => None,
        }
    }
}

/// FNV-1a over the payload — the frame checksum. Deliberately the same
/// construction the server uses for cache-key digests: cheap, stable,
/// and dependency-free.
fn checksum(payload: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in payload {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Frames one record into `out`.
fn write_frame(out: &mut Vec<u8>, record: &WalRecord) {
    let payload = record.encode();
    let bytes = payload.as_bytes();
    out.extend_from_slice(
        &u32::try_from(bytes.len())
            .expect("record fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&checksum(bytes).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Reads every intact frame of `bytes`, returning the decoded records
/// and the offset of the first torn/corrupt frame (== `bytes.len()`
/// when the file is clean).
fn read_frames(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        if len > MAX_RECORD_BYTES {
            break; // corrupt header
        }
        let sum = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
        let start = at + FRAME_HEADER;
        let Some(end) = start
            .checked_add(len as usize)
            .filter(|&e| e <= bytes.len())
        else {
            break; // torn tail: payload shorter than the header promises
        };
        let payload = &bytes[start..end];
        if checksum(payload) != sum {
            break; // torn or corrupt payload
        }
        if let Ok(text) = std::str::from_utf8(payload) {
            if let Some(record) = WalRecord::decode(text) {
                records.push(record);
            }
        }
        at = end;
    }
    (records, at)
}

/// Counters reported under `stats.wal`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended by this process.
    pub appended: u64,
    /// Current size of the append-only log in bytes.
    pub log_bytes: u64,
    /// Snapshot compactions performed by this process.
    pub compactions: u64,
    /// Records replayed at startup (snapshot + log).
    pub replayed: u64,
    /// Torn-tail bytes truncated at startup.
    pub truncated_bytes: u64,
}

/// An open write-ahead log: the append handle plus its counters.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    log: File,
    policy: FsyncPolicy,
    compact_bytes: u64,
    stats: WalStats,
}

impl Wal {
    /// Opens (creating if necessary) the WAL in `dir` and returns the
    /// records to replay — snapshot first, then the log, with any torn
    /// log tail truncated in place.
    ///
    /// # Errors
    ///
    /// Filesystem failures creating the directory or opening the files.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> io::Result<(Self, Vec<WalRecord>)> {
        fs::create_dir_all(dir)?;
        // A tmp file is a compaction that never reached its rename;
        // the snapshot it was replacing is still authoritative.
        let _ = fs::remove_file(dir.join(SNAPSHOT_TMP));
        let mut records = Vec::new();
        let mut truncated = 0u64;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        if let Ok(bytes) = fs::read(&snapshot_path) {
            let (snap, good) = read_frames(&bytes);
            truncated += (bytes.len() - good) as u64;
            records.extend(snap);
        }
        let log_path = dir.join(LOG_FILE);
        let mut log_bytes = 0u64;
        if let Ok(mut file) = File::open(&log_path) {
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)?;
            let (tail, good) = read_frames(&bytes);
            records.extend(tail);
            if good < bytes.len() {
                truncated += (bytes.len() - good) as u64;
                let file = OpenOptions::new().write(true).open(&log_path)?;
                file.set_len(good as u64)?;
                file.sync_data()?;
            }
            log_bytes = good as u64;
        }
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)?;
        let stats = WalStats {
            appended: 0,
            log_bytes,
            compactions: 0,
            replayed: records.len() as u64,
            truncated_bytes: truncated,
        };
        Ok((
            Self {
                dir: dir.to_path_buf(),
                log,
                policy,
                compact_bytes: DEFAULT_COMPACT_BYTES,
                stats,
            },
            records,
        ))
    }

    /// Removes any existing snapshot and log in `dir` (`--no-recover`).
    ///
    /// # Errors
    ///
    /// Filesystem failures other than the files not existing.
    pub fn reset(dir: &Path) -> io::Result<()> {
        for name in [LOG_FILE, SNAPSHOT_FILE, SNAPSHOT_TMP] {
            match fs::remove_file(dir.join(name)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Appends one record (framed, checksummed; fsynced under
    /// [`FsyncPolicy::Always`]).
    ///
    /// # Errors
    ///
    /// Write or sync failures; the in-memory daemon state is unaffected
    /// and the caller keeps serving with durability degraded.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let mut frame = Vec::new();
        write_frame(&mut frame, record);
        self.log.write_all(&frame)?;
        if self.policy == FsyncPolicy::Always {
            self.log.sync_data()?;
        }
        self.stats.appended += 1;
        self.stats.log_bytes += frame.len() as u64;
        Ok(())
    }

    /// Whether the log has outgrown the compaction threshold.
    #[must_use]
    pub fn needs_compaction(&self) -> bool {
        self.stats.log_bytes > self.compact_bytes
    }

    /// Overrides the compaction threshold (tests use tiny values).
    pub fn set_compact_bytes(&mut self, bytes: u64) {
        self.compact_bytes = bytes;
    }

    /// Compacts the log: writes `state` (the caller's full registry +
    /// cache dump) as the new snapshot, atomically renames it into
    /// place, and truncates the log.
    ///
    /// # Errors
    ///
    /// Filesystem failures; the previous snapshot + log stay
    /// authoritative if the rename never happened.
    pub fn compact(&mut self, state: &[WalRecord]) -> io::Result<()> {
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let mut bytes = Vec::new();
        for record in state {
            write_frame(&mut bytes, record);
        }
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        // Between the rename and this truncate the log double-covers
        // the snapshot — replay idempotence makes that window safe.
        self.log = OpenOptions::new()
            .write(true)
            .truncate(true)
            .open(self.dir.join(LOG_FILE))?;
        if self.policy == FsyncPolicy::Always {
            self.log.sync_data()?;
        }
        self.stats.log_bytes = 0;
        self.stats.compactions += 1;
        Ok(())
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> WalStats {
        self.stats
    }
}

/// Fault injection for crash tests: chops `bytes` off the end of the
/// log, simulating a power cut mid-append. The next [`Wal::open`] must
/// truncate back to the last intact record.
#[doc(hidden)]
pub fn truncate_log_tail(dir: &Path, bytes: u64) -> io::Result<()> {
    let path = dir.join(LOG_FILE);
    let len = fs::metadata(&path)?.len();
    let file = OpenOptions::new().write(true).open(&path)?;
    file.set_len(len.saturating_sub(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(model: &str) -> WalRecord {
        WalRecord::Register {
            model: model.to_string(),
            graph_json: format!("{{\"name\":\"{model}\"}}"),
            precision: "fix16".to_string(),
            weight: 1.0,
            share: Some(0.5),
        }
    }

    fn put(key: &str) -> WalRecord {
        WalRecord::PlanPut {
            key: key.to_string(),
            value: format!("{{\"plan\":\"{key}\"}}"),
            tags: vec!["model:a".to_string(), "model:b".to_string()],
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lcmm_wal_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("tempdir");
        dir
    }

    #[test]
    fn records_roundtrip_through_frames() {
        let originals = vec![
            reg("axn"),
            WalRecord::Unregister {
                model: "axn".to_string(),
            },
            put("coplan:abc"),
        ];
        let mut bytes = Vec::new();
        for r in &originals {
            write_frame(&mut bytes, r);
        }
        let (decoded, good) = read_frames(&bytes);
        assert_eq!(good, bytes.len());
        assert_eq!(decoded, originals);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tempdir("torn");
        {
            let (mut wal, replay) = Wal::open(&dir, FsyncPolicy::Always).expect("open");
            assert!(replay.is_empty());
            wal.append(&reg("a")).expect("append");
            wal.append(&put("k1")).expect("append");
        }
        // Chop into the middle of the second record.
        truncate_log_tail(&dir, 7).expect("truncate");
        let (wal, replay) = Wal::open(&dir, FsyncPolicy::Os).expect("reopen");
        assert_eq!(replay, vec![reg("a")], "only the intact prefix replays");
        assert!(wal.stats().truncated_bytes > 0);
        // The truncation is persisted: a third open sees a clean file.
        drop(wal);
        let (wal, replay) = Wal::open(&dir, FsyncPolicy::Os).expect("reopen clean");
        assert_eq!(replay.len(), 1);
        assert_eq!(wal.stats().truncated_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let dir = tempdir("corrupt");
        {
            let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Always).expect("open");
            wal.append(&reg("a")).expect("append");
            wal.append(&reg("b")).expect("append");
        }
        // Flip a payload byte of the last record.
        let path = dir.join(LOG_FILE);
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).expect("write");
        let (_, replay) = Wal::open(&dir, FsyncPolicy::Os).expect("reopen");
        assert_eq!(replay, vec![reg("a")]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_snapshots_and_survives_reopen() {
        let dir = tempdir("compact");
        {
            let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Always).expect("open");
            wal.set_compact_bytes(1);
            wal.append(&reg("a")).expect("append");
            wal.append(&put("k1")).expect("append");
            assert!(wal.needs_compaction());
            // The caller compacts with its current state — here the
            // same two records.
            wal.compact(&[reg("a"), put("k1")]).expect("compact");
            assert_eq!(wal.stats().compactions, 1);
            assert_eq!(wal.stats().log_bytes, 0);
            // Post-compaction appends land in the fresh log.
            wal.append(&put("k2")).expect("append");
        }
        let (_, replay) = Wal::open(&dir, FsyncPolicy::Os).expect("reopen");
        assert_eq!(replay, vec![reg("a"), put("k1"), put("k2")]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_discards_existing_state() {
        let dir = tempdir("reset");
        {
            let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Always).expect("open");
            wal.append(&reg("a")).expect("append");
        }
        Wal::reset(&dir).expect("reset");
        let (_, replay) = Wal::open(&dir, FsyncPolicy::Os).expect("reopen");
        assert!(replay.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("os"), Ok(FsyncPolicy::Os));
        assert_eq!(FsyncPolicy::parse("off"), Ok(FsyncPolicy::Os));
        assert!(FsyncPolicy::parse("maybe").is_err());
    }
}
