//! The JSON-lines wire protocol of the `lcmm serve` daemon.
//!
//! One request per line, one response per line, in order. The full
//! schema — field tables, error codes, examples — is documented in
//! `docs/SERVE.md`; this module is its executable form: parsing
//! ([`WireRequest::from_line`]), resolution of graph/device/precision
//! names into model types ([`WireRequest::resolve_plan`]), and
//! deterministic response rendering ([`WireResponse`]).

use lcmm_core::pipeline::AllocatorKind;
use lcmm_core::{
    FusionMode, LcmmError, LcmmOptions, LcmmResult, PassStats, StreamingMode, UmmBaseline, ValueId,
    WeightMode, STREAM_PING_PONG_BYTES,
};
use lcmm_fpga::{Device, Precision};
use lcmm_graph::Graph;
use serde_json::Value;

/// What a request asks the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Run (or replay from cache) an LCMM plan.
    Plan,
    /// Register (or re-register) a model in the tenant registry.
    Register,
    /// Remove a model from the tenant registry.
    Unregister,
    /// Co-plan every registered model jointly on one device.
    Coplan,
    /// Route one registered model's slice out of the active co-plan.
    Route,
    /// Report daemon statistics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Begin graceful shutdown: drain queued work, then exit.
    Shutdown,
    /// Run the trace-driven workload simulator over a set of models.
    Workload,
}

/// Which graph a plan request is about.
#[derive(Debug, Clone)]
pub enum GraphSpec {
    /// A zoo name (`"googlenet"`) or synthetic spec string
    /// (`"synthetic:256x4x7"`, optionally `@<width%>`).
    Named(String),
    /// An explicit synthetic-generator parameterisation.
    Synthetic {
        /// Requested node count.
        depth: usize,
        /// Branch cap per inception module.
        branching: usize,
        /// Topology seed.
        seed: u64,
        /// Channel width scale in percent (100 = unscaled).
        width_percent: usize,
    },
    /// A full inline graph, in the `lcmm export --json` encoding.
    Inline(Box<Graph>),
}

impl GraphSpec {
    /// Builds the graph this spec names.
    ///
    /// # Errors
    ///
    /// [`LcmmError::UnknownModel`] for unresolvable names.
    pub fn resolve(&self) -> Result<Graph, LcmmError> {
        match self {
            GraphSpec::Named(name) => {
                lcmm_graph::zoo::by_name(name).ok_or_else(|| LcmmError::UnknownModel(name.clone()))
            }
            GraphSpec::Synthetic {
                depth,
                branching,
                seed,
                width_percent,
            } => {
                if *depth == 0 || *width_percent == 0 {
                    return Err(LcmmError::InvalidRequest(
                        "synthetic depth and width_percent must be positive".to_string(),
                    ));
                }
                Ok(lcmm_graph::zoo::synthetic_scaled(
                    *depth,
                    *branching,
                    *seed,
                    *width_percent,
                ))
            }
            GraphSpec::Inline(graph) => Ok((**graph).clone()),
        }
    }
}

/// A parsed (but not yet resolved) request line.
#[derive(Debug, Clone)]
pub struct WireRequest {
    /// Protocol version the client speaks. Absent means 1 (every
    /// pre-versioning request form is part of the frozen v1 surface).
    /// When present, the response echoes it as a trailing `"v"` field;
    /// versions above 1 are rejected with `unsupported_version`.
    pub v: Option<u64>,
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// The operation; defaults to [`Op::Plan`] when `graph` is present.
    pub op: Op,
    /// The graph to plan (required for [`Op::Plan`]).
    pub graph: Option<GraphSpec>,
    /// Device short name; defaults to `vu9p`.
    pub device: Option<String>,
    /// Precision name; defaults to 16-bit fixed point.
    pub precision: Option<String>,
    /// Allocator name; defaults to `dnnk`.
    pub allocator: Option<String>,
    /// Overrides `LcmmOptions::feature_reuse`.
    pub feature_reuse: Option<bool>,
    /// Overrides `LcmmOptions::weight_prefetch`.
    pub weight_prefetch: Option<bool>,
    /// Overrides `LcmmOptions::splitting`.
    pub splitting: Option<bool>,
    /// Overrides `LcmmOptions::weight_streaming` — `"off"`, `"pinned"`
    /// or `"auto"`.
    pub weight_streaming: Option<String>,
    /// Overrides `LcmmOptions::fusion` — `"off"` or `"auto"`. Auto runs
    /// the fused-layer grouping pass ahead of liveness.
    pub fusion: Option<String>,
    /// Overrides `LcmmOptions::tensor_budget` — caps the knapsack's
    /// SRAM budget in bytes (the knob that makes streaming matter).
    pub tensor_budget: Option<u64>,
    /// Per-request deadline in milliseconds, measured from admission.
    pub deadline_ms: Option<u64>,
    /// Attach this run's `PassStats` to the response (computed plans
    /// only; cache hits replay stored bytes and omit stats).
    pub include_stats: bool,
    /// Registry model name ([`Op::Register`] / [`Op::Unregister`] /
    /// [`Op::Route`]).
    pub model: Option<String>,
    /// Objective weight of a registered tenant ([`Op::Register`]).
    pub weight: Option<f64>,
    /// Explicit compute share of a registered tenant ([`Op::Register`]).
    pub share: Option<f64>,
    /// Comma-separated zoo models to simulate ([`Op::Workload`]).
    pub models: Option<String>,
    /// Trace spec — `bursty2`, an inline spec, or a JSON trace file
    /// path ([`Op::Workload`]).
    pub trace: Option<String>,
    /// Whether the adaptive share controller runs ([`Op::Workload`];
    /// defaults to on).
    pub controller: Option<bool>,
    /// Share-grid resolution ([`Op::Workload`]; defaults to 4).
    pub steps: Option<u64>,
}

/// A plan request resolved into model types, ready to run.
#[derive(Debug, Clone)]
pub struct ResolvedPlan {
    /// The graph to plan.
    pub graph: Graph,
    /// The target device.
    pub device: Device,
    /// Datapath precision.
    pub precision: Precision,
    /// Pipeline options (allocator and pass toggles applied).
    pub options: LcmmOptions,
}

impl WireRequest {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed JSON, non-object lines,
    /// unknown `op` values, or ill-typed fields. The daemon maps these
    /// to the `bad_request` error code.
    pub fn from_line(line: &str) -> Result<Self, String> {
        let value: Value =
            serde_json::from_str(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let obj = value
            .as_object()
            .ok_or_else(|| "request must be a JSON object".to_string())?;
        for (key, _) in obj {
            match key.as_str() {
                "v" | "id" | "op" | "graph" | "device" | "precision" | "allocator" | "options"
                | "deadline_ms" | "include_stats" | "model" | "weight" | "share" | "models"
                | "trace" | "controller" | "steps" => {}
                other => return Err(format!("unknown request field {other:?}")),
            }
        }
        let v = match value.get("v") {
            None | Some(Value::Null) => None,
            Some(val) => Some(
                val.as_u64()
                    .ok_or_else(|| "v must be an unsigned integer".to_string())?,
            ),
        };
        let id = match value.get("id") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| "id must be an unsigned integer".to_string())?,
            ),
        };
        let op = match value.get("op") {
            None => Op::Plan,
            Some(v) => match v.as_str() {
                Some("plan") => Op::Plan,
                Some("register") => Op::Register,
                Some("unregister") => Op::Unregister,
                Some("coplan") => Op::Coplan,
                Some("route") => Op::Route,
                Some("stats") => Op::Stats,
                Some("ping") => Op::Ping,
                Some("shutdown") => Op::Shutdown,
                Some("workload") => Op::Workload,
                Some(other) => return Err(format!("unknown op {other:?}")),
                None => return Err("op must be a string".to_string()),
            },
        };
        let graph = match value.get("graph") {
            None | Some(Value::Null) => None,
            Some(v) => Some(parse_graph_spec(v)?),
        };
        let str_field = |name: &str| -> Result<Option<String>, String> {
            match value.get(name) {
                None | Some(Value::Null) => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| format!("{name} must be a string")),
            }
        };
        let device = str_field("device")?;
        let precision = str_field("precision")?;
        let allocator = str_field("allocator")?;
        let (mut feature_reuse, mut weight_prefetch, mut splitting) = (None, None, None);
        let mut weight_streaming = None;
        let mut fusion = None;
        let mut tensor_budget = None;
        if let Some(options) = value.get("options") {
            let entries = options
                .as_object()
                .ok_or_else(|| "options must be an object".to_string())?;
            let bool_option = |key: &str, v: &Value| -> Result<bool, String> {
                v.as_bool()
                    .ok_or_else(|| format!("options.{key} must be a boolean"))
            };
            for (key, v) in entries {
                match key.as_str() {
                    "feature_reuse" => feature_reuse = Some(bool_option(key, v)?),
                    "weight_prefetch" => weight_prefetch = Some(bool_option(key, v)?),
                    "splitting" => splitting = Some(bool_option(key, v)?),
                    "weight_streaming" => {
                        let mode = v.as_str().ok_or_else(|| {
                            "options.weight_streaming must be a string".to_string()
                        })?;
                        weight_streaming = Some(mode.to_string());
                    }
                    "fusion" => {
                        let mode = v
                            .as_str()
                            .ok_or_else(|| "options.fusion must be a string".to_string())?;
                        fusion = Some(mode.to_string());
                    }
                    "tensor_budget" => {
                        tensor_budget = Some(v.as_u64().ok_or_else(|| {
                            "options.tensor_budget must be an unsigned integer".to_string()
                        })?);
                    }
                    other => return Err(format!("unknown option {other:?}")),
                }
            }
        }
        let deadline_ms = match value.get("deadline_ms") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| "deadline_ms must be an unsigned integer".to_string())?,
            ),
        };
        let include_stats = match value.get("include_stats") {
            None | Some(Value::Null) => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| "include_stats must be a boolean".to_string())?,
        };
        let model = str_field("model")?;
        let f64_field = |name: &str| -> Result<Option<f64>, String> {
            match value.get(name) {
                None | Some(Value::Null) => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| format!("{name} must be a number")),
            }
        };
        let weight = f64_field("weight")?;
        let share = f64_field("share")?;
        let models = str_field("models")?;
        let trace = str_field("trace")?;
        let controller = match value.get("controller") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_bool()
                    .ok_or_else(|| "controller must be a boolean".to_string())?,
            ),
        };
        let steps = match value.get("steps") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| "steps must be an unsigned integer".to_string())?,
            ),
        };
        Ok(Self {
            v,
            id,
            op,
            graph,
            device,
            precision,
            allocator,
            feature_reuse,
            weight_prefetch,
            splitting,
            weight_streaming,
            fusion,
            tensor_budget,
            deadline_ms,
            include_stats,
            model,
            weight,
            share,
            models,
            trace,
            controller,
            steps,
        })
    }

    /// Resolves the plan fields into model types.
    ///
    /// # Errors
    ///
    /// [`LcmmError::InvalidRequest`] for a missing graph or unknown
    /// precision/allocator, [`LcmmError::UnknownModel`] /
    /// [`LcmmError::UnknownDevice`] for unresolvable names.
    pub fn resolve_plan(&self) -> Result<ResolvedPlan, LcmmError> {
        let spec = self.graph.as_ref().ok_or_else(|| {
            LcmmError::InvalidRequest("plan request needs a \"graph\" field".to_string())
        })?;
        let graph = spec.resolve()?;
        let device_name = self.device.as_deref().unwrap_or("vu9p");
        let device = Device::by_name(device_name)
            .ok_or_else(|| LcmmError::UnknownDevice(device_name.to_string()))?;
        let precision = parse_precision(self.precision.as_deref().unwrap_or("fix16"))?;
        Ok(ResolvedPlan {
            graph,
            device,
            precision,
            options: self.resolve_options()?,
        })
    }

    /// Resolves just the allocator and pass-toggle fields — shared by
    /// plan and co-plan requests.
    ///
    /// # Errors
    ///
    /// [`LcmmError::InvalidRequest`] for an unknown allocator name.
    pub(crate) fn resolve_options(&self) -> Result<LcmmOptions, LcmmError> {
        let mut options = LcmmOptions::default();
        if let Some(name) = self.allocator.as_deref() {
            options = options.with_allocator(parse_allocator(name)?);
        }
        if let Some(flag) = self.feature_reuse {
            options = options.with_feature_reuse(flag);
        }
        if let Some(flag) = self.weight_prefetch {
            options = options.with_weight_prefetch(flag);
        }
        if let Some(flag) = self.splitting {
            options = options.with_splitting(flag);
        }
        if let Some(mode) = self.weight_streaming.as_deref() {
            let mode = match mode {
                "off" => StreamingMode::Off,
                "pinned" => StreamingMode::Pinned,
                "auto" => StreamingMode::Auto,
                other => {
                    return Err(LcmmError::InvalidRequest(format!(
                        "unknown weight_streaming mode {other:?} (expected off, pinned or auto)"
                    )))
                }
            };
            options = options.with_weight_streaming(mode);
        }
        if let Some(mode) = self.fusion.as_deref() {
            let mode = match mode {
                "off" => FusionMode::Off,
                "auto" => FusionMode::Auto,
                other => {
                    return Err(LcmmError::InvalidRequest(format!(
                        "unknown fusion mode {other:?} (expected off or auto)"
                    )))
                }
            };
            options = options.with_fusion(mode);
        }
        if let Some(budget) = self.tensor_budget {
            options = options.with_tensor_budget(Some(budget));
        }
        Ok(options)
    }
}

/// Parses the `graph` field: a name string, a `{"zoo": ...}` /
/// `{"synthetic": {...}}` / `{"inline": {...}}` object.
fn parse_graph_spec(v: &Value) -> Result<GraphSpec, String> {
    if let Some(name) = v.as_str() {
        return Ok(GraphSpec::Named(name.to_string()));
    }
    let obj = v
        .as_object()
        .ok_or_else(|| "graph must be a name string or an object".to_string())?;
    if obj.len() != 1 {
        return Err("graph object must have exactly one of: zoo, synthetic, inline".to_string());
    }
    let (key, inner) = &obj[0];
    match key.as_str() {
        "zoo" => inner
            .as_str()
            .map(|s| GraphSpec::Named(s.to_string()))
            .ok_or_else(|| "graph.zoo must be a string".to_string()),
        "synthetic" => {
            let field = |name: &str, default: Option<u64>| -> Result<u64, String> {
                match inner.get(name) {
                    None | Some(Value::Null) => {
                        default.ok_or_else(|| format!("graph.synthetic.{name} is required"))
                    }
                    Some(v) => v
                        .as_u64()
                        .ok_or_else(|| format!("graph.synthetic.{name} must be an integer")),
                }
            };
            inner
                .as_object()
                .ok_or_else(|| "graph.synthetic must be an object".to_string())?;
            Ok(GraphSpec::Synthetic {
                depth: field("depth", None)? as usize,
                branching: field("branching", Some(2))? as usize,
                seed: field("seed", Some(7))?,
                width_percent: field("width_percent", Some(100))? as usize,
            })
        }
        "inline" => {
            let graph: Graph = serde_json::from_value(inner)
                .map_err(|e| format!("graph.inline does not decode as a graph: {e}"))?;
            if graph.is_empty() {
                return Err("graph.inline is empty".to_string());
            }
            Ok(GraphSpec::Inline(Box::new(graph)))
        }
        other => Err(format!("unknown graph spec kind {other:?}")),
    }
}

/// Parses a precision name (`8`/`fix8`, `16`/`fix16`, `32`/`float32`…).
pub(crate) fn parse_precision(name: &str) -> Result<Precision, LcmmError> {
    match name.to_ascii_lowercase().as_str() {
        "8" | "fix8" | "int8" | "8-bit" => Ok(Precision::Fix8),
        "16" | "fix16" | "int16" | "16-bit" => Ok(Precision::Fix16),
        "32" | "float32" | "fp32" | "32-bit" => Ok(Precision::Float32),
        other => Err(LcmmError::InvalidRequest(format!(
            "unknown precision {other:?} (use 8, 16 or 32)"
        ))),
    }
}

/// Parses an allocator name.
fn parse_allocator(name: &str) -> Result<AllocatorKind, LcmmError> {
    match name.to_ascii_lowercase().as_str() {
        "dnnk" => Ok(AllocatorKind::Dnnk),
        "dnnk-iterative" | "dnnk_iterative" | "iterative" => Ok(AllocatorKind::DnnkIterative),
        "greedy" => Ok(AllocatorKind::Greedy),
        "exhaustive" => Ok(AllocatorKind::Exhaustive),
        other => Err(LcmmError::InvalidRequest(format!(
            "unknown allocator {other:?} (use dnnk, dnnk-iterative, greedy or exhaustive)"
        ))),
    }
}

/// Canonical allocator name for summaries (inverse of the wire
/// `allocator` field's parser).
#[must_use]
pub fn allocator_name(kind: AllocatorKind) -> &'static str {
    match kind {
        AllocatorKind::Dnnk => "dnnk",
        AllocatorKind::DnnkIterative => "dnnk-iterative",
        AllocatorKind::Greedy => "greedy",
        AllocatorKind::Exhaustive => "exhaustive",
    }
}

/// Canonical precision name for summaries.
#[must_use]
pub fn precision_name(precision: Precision) -> &'static str {
    match precision {
        Precision::Fix8 => "fix8",
        Precision::Fix16 => "fix16",
        Precision::Float32 => "float32",
    }
}

/// Builds the deterministic plan summary embedded in responses (and
/// stored in the plan cache). Every field is a pure function of the
/// request, so byte-identity across duplicate requests holds; wall
/// clock timings live in the separate `pass_stats` response field.
#[must_use]
pub fn plan_summary(resolved: &ResolvedPlan, result: &LcmmResult, umm: &UmmBaseline) -> Value {
    let allocated: u64 = result.allocated_buffer_sizes().iter().sum();
    let chosen = result.chosen.iter().filter(|&&c| c).count();
    let design = Value::Map(vec![
        (
            "array_cols".to_string(),
            Value::U64(result.design.array.cols as u64),
        ),
        (
            "array_rows".to_string(),
            Value::U64(result.design.array.rows as u64),
        ),
        (
            "array_simd".to_string(),
            Value::U64(result.design.array.simd as u64),
        ),
        ("batch".to_string(), Value::U64(result.design.batch as u64)),
        (
            "frequency_hz".to_string(),
            Value::F64(result.design.freq_hz),
        ),
    ]);
    let mut fields = vec![
        ("allocated_bytes".to_string(), Value::U64(allocated)),
        (
            "allocator".to_string(),
            Value::Str(allocator_name(resolved.options.allocator).to_string()),
        ),
        (
            "buffers".to_string(),
            Value::U64(result.buffers.len() as u64),
        ),
        ("chosen_buffers".to_string(), Value::U64(chosen as u64)),
        ("design".to_string(), design),
        (
            "device".to_string(),
            Value::Str(result.design.device.name.clone()),
        ),
        ("latency_seconds".to_string(), Value::F64(result.latency)),
        (
            "layers_benefiting".to_string(),
            Value::U64(result.layers_benefiting as u64),
        ),
        (
            "memory_bound_layers".to_string(),
            Value::U64(result.memory_bound_layers as u64),
        ),
        (
            "model".to_string(),
            Value::Str(resolved.graph.name().to_string()),
        ),
        ("nodes".to_string(), Value::U64(resolved.graph.len() as u64)),
        ("ops".to_string(), Value::U64(result.ops)),
        ("pol".to_string(), Value::F64(result.pol())),
        (
            "precision".to_string(),
            Value::Str(precision_name(resolved.precision).to_string()),
        ),
        (
            "resident_values".to_string(),
            Value::U64(result.residency.len() as u64),
        ),
        (
            "speedup_over_umm".to_string(),
            Value::F64(result.speedup_over(umm.latency)),
        ),
        (
            "split_iterations".to_string(),
            Value::U64(result.split_iterations as u64),
        ),
        ("umm_latency_seconds".to_string(), Value::F64(umm.latency)),
    ];
    // Optional blocks are surfaced only when their pass was requested,
    // so legacy responses (and their goldens) stay byte-identical. The
    // fusion block keeps the summary's alphabetical key order ("fusion"
    // sorts between "device" and "latency_seconds").
    if resolved.options.fusion != FusionMode::Off {
        let pos = fields.partition_point(|(k, _)| k.as_str() < "fusion");
        fields.insert(
            pos,
            ("fusion".to_string(), fusion_summary(resolved, result)),
        );
    }
    if resolved.options.weight_streaming != StreamingMode::Off {
        fields.push((
            "weight_streaming".to_string(),
            weight_streaming_summary(resolved, result),
        ));
    }
    Value::Map(fields)
}

/// The `fusion` block of a plan summary: aggregate benefit plus one
/// table row per selected fused group (member/output layer names and
/// the tile count the group executes with). Pure function of the
/// result's fusion plan, so it replays byte-identically from the cache.
fn fusion_summary(resolved: &ResolvedPlan, result: &LcmmResult) -> Value {
    let groups: Vec<Value> = result
        .fusion
        .groups
        .iter()
        .map(|g| {
            Value::Map(vec![
                (
                    "nodes".to_string(),
                    Value::Seq(
                        g.nodes
                            .iter()
                            .map(|&n| Value::Str(resolved.graph.node(n).name().to_string()))
                            .collect(),
                    ),
                ),
                (
                    "output".to_string(),
                    Value::Str(resolved.graph.node(g.output).name().to_string()),
                ),
                ("tiles".to_string(), Value::U64(g.tiles as u64)),
                (
                    "transfer_saved_seconds".to_string(),
                    Value::F64(g.transfer_saved_seconds),
                ),
            ])
        })
        .collect();
    Value::Map(vec![
        (
            "benefit_seconds".to_string(),
            Value::F64(result.fusion.benefit_seconds()),
        ),
        (
            "eliminated_tensors".to_string(),
            Value::U64(result.fusion.eliminated().len() as u64),
        ),
        (
            "fused_nodes".to_string(),
            Value::U64(result.fusion.fused_nodes() as u64),
        ),
        ("groups".to_string(), Value::Seq(groups)),
        (
            "transfer_saved_seconds".to_string(),
            Value::F64(result.fusion.transfer_saved_seconds()),
        ),
    ])
}

/// The `weight_streaming` block of a plan summary: occupied (mode-aware)
/// bytes, per-mode buffer counts, and one table row per chosen buffer
/// that is not pinned whole.
fn weight_streaming_summary(resolved: &ResolvedPlan, result: &LcmmResult) -> Value {
    let occupied: u64 = result.occupied_buffer_sizes().iter().sum();
    let (mut pinned, mut streamed, mut partial) = (0u64, 0u64, 0u64);
    let mut table = Vec::new();
    for (i, (buf, &chosen)) in result.buffers.iter().zip(&result.chosen).enumerate() {
        if !chosen || !buf.members.iter().any(|m| matches!(m, ValueId::Weight(_))) {
            continue;
        }
        let mode = result
            .weight_modes
            .get(i)
            .copied()
            .unwrap_or(WeightMode::Pinned);
        let bytes = match mode {
            WeightMode::Pinned => {
                pinned += 1;
                continue;
            }
            WeightMode::Streamed { .. } => {
                streamed += 1;
                STREAM_PING_PONG_BYTES
            }
            WeightMode::PartialResident { resident_bytes } => {
                partial += 1;
                resident_bytes
            }
        };
        let ValueId::Weight(node) = buf.members[0] else {
            continue;
        };
        table.push(Value::Map(vec![
            ("buffer".to_string(), Value::U64(i as u64)),
            ("mode".to_string(), Value::Str(mode.label())),
            (
                "node".to_string(),
                Value::Str(resolved.graph.node(node).name().to_string()),
            ),
            ("occupied_bytes".to_string(), Value::U64(bytes)),
            ("weight_bytes".to_string(), Value::U64(buf.bytes)),
        ]));
    }
    Value::Map(vec![
        ("occupied_bytes".to_string(), Value::U64(occupied)),
        ("partial".to_string(), Value::U64(partial)),
        ("pinned".to_string(), Value::U64(pinned)),
        ("streamed".to_string(), Value::U64(streamed)),
        ("table".to_string(), Value::Seq(table)),
    ])
}

/// JSON form of a `PassStats` (wall-clock fields — nondeterministic,
/// never cached or goldened).
#[must_use]
pub fn pass_stats_value(stats: &PassStats) -> Value {
    serde_json::to_value(stats).unwrap_or(Value::Null)
}

/// Response envelopes. Each renders to one JSON line with a fixed field
/// order, so equal payloads are byte-identical lines.
#[derive(Debug, Clone)]
pub enum WireResponse {
    /// A successful plan: the summary, whether it came from the cache,
    /// and (for computed plans that asked) the run's pass stats.
    Plan {
        /// Echoed request id.
        id: Option<u64>,
        /// The [`plan_summary`] payload.
        plan: Value,
        /// Whether the payload was replayed from the plan cache.
        cached: bool,
        /// `PassStats` of the computing run, when requested.
        pass_stats: Option<Value>,
    },
    /// A `/stats` report.
    Stats {
        /// Echoed request id.
        id: Option<u64>,
        /// The stats payload (see `docs/SERVE.md`).
        stats: Value,
    },
    /// Acknowledges a registry mutation (`register` / `unregister`).
    Registry {
        /// Echoed request id.
        id: Option<u64>,
        /// `"register"` or `"unregister"`.
        action: String,
        /// The model the action applied to.
        model: String,
        /// Registered models after the action.
        models: u64,
    },
    /// A ping reply.
    Pong {
        /// Echoed request id.
        id: Option<u64>,
    },
    /// Acknowledges a shutdown request.
    Shutdown {
        /// Echoed request id.
        id: Option<u64>,
    },
    /// Any failure, with a stable machine-readable code.
    Error {
        /// Echoed request id (when the line parsed far enough to tell).
        id: Option<u64>,
        /// Stable error code (`bad_request`, `timeout`, `queue_full`…).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl WireResponse {
    /// An error response from an [`LcmmError`].
    #[must_use]
    pub fn from_error(id: Option<u64>, err: &LcmmError) -> Self {
        WireResponse::Error {
            id,
            code: err.code().to_string(),
            message: err.to_string(),
        }
    }

    /// Renders the response as one JSON line (no trailing newline).
    /// Equivalent to [`WireResponse::to_line_v`] with no version echo —
    /// the byte-exact pre-versioning encoding.
    #[must_use]
    pub fn to_line(&self) -> String {
        self.to_line_v(None)
    }

    /// Renders the response as one JSON line, echoing the protocol
    /// version when the request carried one. `"v"` sorts after every
    /// existing response key, so versioned responses are the legacy
    /// line with `,"v":1` appended before the closing brace — legacy
    /// clients (which never send `v`) keep byte-identical responses.
    #[must_use]
    pub fn to_line_v(&self, v: Option<u64>) -> String {
        let mut fields: Vec<(String, Value)> = Vec::new();
        let id = match self {
            WireResponse::Plan { id, .. }
            | WireResponse::Stats { id, .. }
            | WireResponse::Registry { id, .. }
            | WireResponse::Pong { id }
            | WireResponse::Shutdown { id }
            | WireResponse::Error { id, .. } => *id,
        };
        match self {
            WireResponse::Plan {
                plan,
                cached,
                pass_stats,
                ..
            } => {
                fields.push(("cached".to_string(), Value::Bool(*cached)));
                if let Some(id) = id {
                    fields.push(("id".to_string(), Value::U64(id)));
                }
                fields.push(("ok".to_string(), Value::Bool(true)));
                if let Some(stats) = pass_stats {
                    fields.push(("pass_stats".to_string(), stats.clone()));
                }
                fields.push(("plan".to_string(), plan.clone()));
            }
            WireResponse::Stats { stats, .. } => {
                if let Some(id) = id {
                    fields.push(("id".to_string(), Value::U64(id)));
                }
                fields.push(("ok".to_string(), Value::Bool(true)));
                fields.push(("stats".to_string(), stats.clone()));
            }
            WireResponse::Registry {
                action,
                model,
                models,
                ..
            } => {
                fields.push(("action".to_string(), Value::Str(action.clone())));
                if let Some(id) = id {
                    fields.push(("id".to_string(), Value::U64(id)));
                }
                fields.push(("model".to_string(), Value::Str(model.clone())));
                fields.push(("models".to_string(), Value::U64(*models)));
                fields.push(("ok".to_string(), Value::Bool(true)));
            }
            WireResponse::Pong { .. } => {
                if let Some(id) = id {
                    fields.push(("id".to_string(), Value::U64(id)));
                }
                fields.push(("ok".to_string(), Value::Bool(true)));
                fields.push(("pong".to_string(), Value::Bool(true)));
            }
            WireResponse::Shutdown { .. } => {
                if let Some(id) = id {
                    fields.push(("id".to_string(), Value::U64(id)));
                }
                fields.push(("ok".to_string(), Value::Bool(true)));
                fields.push(("shutdown".to_string(), Value::Bool(true)));
            }
            WireResponse::Error { code, message, .. } => {
                let error = Value::Map(vec![
                    ("code".to_string(), Value::Str(code.clone())),
                    ("message".to_string(), Value::Str(message.clone())),
                ]);
                fields.push(("error".to_string(), error));
                if let Some(id) = id {
                    fields.push(("id".to_string(), Value::U64(id)));
                }
                fields.push(("ok".to_string(), Value::Bool(false)));
            }
        }
        if let Some(v) = v {
            fields.push(("v".to_string(), Value::U64(v)));
        }
        serde_json::to_string(&Value::Map(fields)).expect("response serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_plan_request() {
        let r = WireRequest::from_line(r#"{"graph":"alexnet"}"#).expect("parses");
        assert_eq!(r.op, Op::Plan);
        assert!(matches!(r.graph, Some(GraphSpec::Named(ref n)) if n == "alexnet"));
        let resolved = r.resolve_plan().expect("resolves");
        assert_eq!(resolved.graph.name(), "alexnet");
        assert_eq!(resolved.device.name, "xcvu9p");
        assert_eq!(resolved.precision, Precision::Fix16);
        assert_eq!(resolved.options.allocator, AllocatorKind::Dnnk);
    }

    #[test]
    fn parses_the_full_field_set() {
        let line = r#"{"id":7,"op":"plan","graph":{"synthetic":{"depth":64,"branching":3,"seed":5,"width_percent":50}},"device":"zu9eg","precision":"8","allocator":"greedy","options":{"splitting":false},"deadline_ms":250,"include_stats":true}"#;
        let r = WireRequest::from_line(line).expect("parses");
        assert_eq!(r.id, Some(7));
        assert_eq!(r.deadline_ms, Some(250));
        assert!(r.include_stats);
        let resolved = r.resolve_plan().expect("resolves");
        assert_eq!(resolved.device.name, "xczu9eg");
        assert_eq!(resolved.precision, Precision::Fix8);
        assert_eq!(resolved.options.allocator, AllocatorKind::Greedy);
        assert!(!resolved.options.splitting);
        assert!(resolved.options.feature_reuse);
    }

    #[test]
    fn inline_graphs_roundtrip() {
        let g = lcmm_graph::zoo::alexnet();
        let inline = serde_json::to_string(&g).expect("graph serialises");
        let line = format!("{{\"graph\":{{\"inline\":{inline}}}}}");
        let r = WireRequest::from_line(&line).expect("parses");
        let resolved = r.resolve_plan().expect("resolves");
        assert_eq!(resolved.graph.len(), g.len());
        assert_eq!(resolved.graph.name(), "alexnet");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(WireRequest::from_line("not json").is_err());
        assert!(WireRequest::from_line("[1,2]").is_err());
        assert!(WireRequest::from_line(r#"{"op":"fry"}"#).is_err());
        assert!(WireRequest::from_line(r#"{"graph":"a","bogus":1}"#).is_err());
        assert!(WireRequest::from_line(r#"{"graph":"a","options":{"turbo":true}}"#).is_err());
        assert!(WireRequest::from_line(r#"{"graph":"a","deadline_ms":"soon"}"#).is_err());
        assert!(WireRequest::from_line(r#"{"graph":{"zoo":"a","inline":{}}}"#).is_err());
    }

    #[test]
    fn resolve_reports_typed_errors() {
        let missing = WireRequest::from_line(r#"{"op":"plan"}"#).unwrap();
        assert!(matches!(
            missing.resolve_plan(),
            Err(LcmmError::InvalidRequest(_))
        ));
        let model = WireRequest::from_line(r#"{"graph":"nonexistent-net"}"#).unwrap();
        assert!(matches!(
            model.resolve_plan(),
            Err(LcmmError::UnknownModel(_))
        ));
        let device = WireRequest::from_line(r#"{"graph":"alexnet","device":"asic"}"#).unwrap();
        assert!(matches!(
            device.resolve_plan(),
            Err(LcmmError::UnknownDevice(_))
        ));
        let precision = WireRequest::from_line(r#"{"graph":"alexnet","precision":"11"}"#).unwrap();
        assert!(matches!(
            precision.resolve_plan(),
            Err(LcmmError::InvalidRequest(_))
        ));
    }

    #[test]
    fn parses_and_validates_weight_streaming() {
        let line = r#"{"graph":"alexnet","options":{"weight_streaming":"auto"}}"#;
        let r = WireRequest::from_line(line).expect("parses");
        let resolved = r.resolve_plan().expect("resolves");
        assert_eq!(resolved.options.weight_streaming, StreamingMode::Auto);
        for (mode, expect) in [
            ("off", StreamingMode::Off),
            ("pinned", StreamingMode::Pinned),
        ] {
            let line =
                format!("{{\"graph\":\"alexnet\",\"options\":{{\"weight_streaming\":{mode:?}}}}}");
            let resolved = WireRequest::from_line(&line)
                .expect("parses")
                .resolve_plan()
                .expect("resolves");
            assert_eq!(resolved.options.weight_streaming, expect);
        }
        // Unknown mode strings resolve to a typed error; non-string
        // values are rejected at parse time.
        let bad =
            WireRequest::from_line(r#"{"graph":"alexnet","options":{"weight_streaming":"turbo"}}"#)
                .expect("parses");
        assert!(matches!(
            bad.resolve_plan(),
            Err(LcmmError::InvalidRequest(_))
        ));
        assert!(WireRequest::from_line(
            r#"{"graph":"alexnet","options":{"weight_streaming":true}}"#
        )
        .is_err());
    }

    #[test]
    fn parses_and_validates_fusion() {
        let line = r#"{"graph":"alexnet","options":{"fusion":"auto"}}"#;
        let r = WireRequest::from_line(line).expect("parses");
        let resolved = r.resolve_plan().expect("resolves");
        assert_eq!(resolved.options.fusion, FusionMode::Auto);
        let off = WireRequest::from_line(r#"{"graph":"alexnet","options":{"fusion":"off"}}"#)
            .expect("parses")
            .resolve_plan()
            .expect("resolves");
        assert_eq!(off.options.fusion, FusionMode::Off);
        // Unknown mode strings resolve to a typed error; non-string
        // values are rejected at parse time.
        let bad = WireRequest::from_line(r#"{"graph":"alexnet","options":{"fusion":"max"}}"#)
            .expect("parses");
        assert!(matches!(
            bad.resolve_plan(),
            Err(LcmmError::InvalidRequest(_))
        ));
        assert!(
            WireRequest::from_line(r#"{"graph":"alexnet","options":{"fusion":true}}"#).is_err()
        );
    }

    #[test]
    fn plan_summary_gates_the_fusion_block() {
        // Fusion off (the default): no block, so pre-fusion goldens
        // stay byte-identical.
        let r = WireRequest::from_line(r#"{"graph":"resnet50"}"#).unwrap();
        let resolved = r.resolve_plan().unwrap();
        let umm = UmmBaseline::build(&resolved.graph, &resolved.device, resolved.precision);
        let result =
            lcmm_core::PlanRequest::new(&resolved.graph, &resolved.device, resolved.precision)
                .with_design(umm.design.clone())
                .run()
                .expect("feasible");
        let off = serde_json::to_string(&plan_summary(&resolved, &result, &umm)).unwrap();
        assert!(!off.contains("\"fusion\""));

        // Fusion auto at a tight budget: the block appears right after
        // "device" (alphabetical key order preserved) with group rows.
        let budget = umm.design.tensor_sram_budget() / 8;
        let line = format!(
            "{{\"graph\":\"resnet50\",\"options\":{{\"fusion\":\"auto\",\"tensor_budget\":{budget}}}}}"
        );
        let r = WireRequest::from_line(&line).unwrap();
        let resolved = r.resolve_plan().unwrap();
        let result =
            lcmm_core::PlanRequest::new(&resolved.graph, &resolved.device, resolved.precision)
                .options(resolved.options)
                .with_design(umm.design.clone())
                .run()
                .expect("feasible");
        assert!(!result.fusion.is_empty(), "tight budget must fuse groups");
        let auto = serde_json::to_string(&plan_summary(&resolved, &result, &umm)).unwrap();
        assert!(auto.contains("\"fusion\":{\"benefit_seconds\":"));
        assert!(auto.contains("\"tiles\":"));
        let fusion_at = auto.find("\"fusion\"").unwrap();
        assert!(auto.find("\"device\"").unwrap() < fusion_at);
        assert!(fusion_at < auto.find("\"latency_seconds\"").unwrap());
    }

    #[test]
    fn plan_summary_gates_the_weight_streaming_block() {
        // Streaming off (the default): the summary must not mention the
        // block at all, so the pre-AutoWS goldens stay byte-identical.
        let r = WireRequest::from_line(r#"{"graph":"alexnet"}"#).unwrap();
        let resolved = r.resolve_plan().unwrap();
        let umm = UmmBaseline::build(&resolved.graph, &resolved.device, resolved.precision);
        let result =
            lcmm_core::PlanRequest::new(&resolved.graph, &resolved.device, resolved.precision)
                .with_design(umm.design.clone())
                .run()
                .expect("feasible");
        let off = serde_json::to_string(&plan_summary(&resolved, &result, &umm)).unwrap();
        assert!(!off.contains("weight_streaming"));

        // Streaming auto at a tiny budget: the block appears with a
        // non-empty mode table and the occupied bytes respect it.
        let line =
            r#"{"graph":"alexnet","options":{"weight_streaming":"auto","tensor_budget":1048576}}"#;
        let r = WireRequest::from_line(line).unwrap();
        let resolved = r.resolve_plan().unwrap();
        let result =
            lcmm_core::PlanRequest::new(&resolved.graph, &resolved.device, resolved.precision)
                .options(resolved.options)
                .with_design(umm.design.clone())
                .run()
                .expect("feasible");
        let auto = serde_json::to_string(&plan_summary(&resolved, &result, &umm)).unwrap();
        assert!(auto.contains("\"weight_streaming\":{\"occupied_bytes\":"));
        assert!(
            auto.contains("\"mode\":\"streamed\"") || auto.contains("\"mode\":\"partial\""),
            "a 1 MiB budget on alexnet must stream something: {auto}"
        );
    }

    #[test]
    fn responses_have_fixed_field_order() {
        let pong = WireResponse::Pong { id: Some(3) }.to_line();
        assert_eq!(pong, r#"{"id":3,"ok":true,"pong":true}"#);
        let err = WireResponse::Error {
            id: None,
            code: "queue_full".to_string(),
            message: "try later".to_string(),
        }
        .to_line();
        assert_eq!(
            err,
            r#"{"error":{"code":"queue_full","message":"try later"},"ok":false}"#
        );
    }

    #[test]
    fn plan_summary_is_deterministic() {
        let r = WireRequest::from_line(r#"{"graph":"alexnet"}"#).unwrap();
        let resolved = r.resolve_plan().unwrap();
        let umm = UmmBaseline::build(&resolved.graph, &resolved.device, resolved.precision);
        let result =
            lcmm_core::PlanRequest::new(&resolved.graph, &resolved.device, resolved.precision)
                .with_design(umm.design.clone())
                .run()
                .expect("feasible");
        let a = serde_json::to_string(&plan_summary(&resolved, &result, &umm)).unwrap();
        let b = serde_json::to_string(&plan_summary(&resolved, &result, &umm)).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"model\":\"alexnet\""));
        assert!(a.contains("\"speedup_over_umm\""));
        assert!(!a.contains("seconds\":0.0,\"total"), "no wall-clock stats");
    }
}
