//! Crash/restart recovery tests: a daemon killed uncleanly (handle
//! dropped, no shutdown, including mid-WAL-append via the fault
//! injection hook) and restarted on the same `--wal-dir` must serve
//! byte-identical registry/cache state and plan replies versus an
//! uninterrupted run.

use lcmm_serve::{Server, ServerConfig};
use serde_json::Value;
use std::path::PathBuf;

fn parse(line: &str) -> Value {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("non-JSON response {line:?}: {e}"))
}

fn stat_u64(server: &Server, section: &str, field: &str) -> u64 {
    let v = parse(&server.handle_line(r#"{"op":"stats"}"#));
    v.get("stats")
        .and_then(|s| s.get(section))
        .and_then(|s| s.get(field))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing stats.{section}.{field}"))
}

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcmm_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &PathBuf) -> ServerConfig {
    ServerConfig::default().with_workers(2).with_wal_dir(dir)
}

/// The registry + cache churn every test drives: two tenants, a
/// co-plan computed and replayed, a single-model plan computed and
/// replayed, plus a register/unregister round-trip of a third model.
/// Returns the *cached* co-plan and plan reply lines — the bytes a
/// recovered daemon must reproduce.
fn churn(server: &Server) -> (String, String) {
    server.handle_line(r#"{"op":"register","model":"axn","graph":"alexnet","share":0.5}"#);
    server.handle_line(r#"{"op":"register","model":"sqz","graph":"squeezenet","share":0.5}"#);
    // A third tenant comes and goes — replay must end with it absent.
    server.handle_line(r#"{"op":"register","model":"tmp","graph":"googlenet","share":0.3}"#);
    server.handle_line(r#"{"op":"unregister","model":"tmp"}"#);
    let first = server.handle_line(r#"{"op":"coplan"}"#);
    assert!(first.contains("\"cached\":false"), "{first}");
    let coplan = server.handle_line(r#"{"op":"coplan"}"#);
    assert!(coplan.contains("\"cached\":true"), "{coplan}");
    let plan_line = r#"{"graph":"alexnet","precision":"8"}"#;
    server.handle_line(plan_line);
    let plan = server.handle_line(plan_line);
    assert!(plan.contains("\"cached\":true"), "{plan}");
    (coplan, plan)
}

#[test]
fn unclean_restart_replays_state_bit_identically() {
    let dir = wal_dir("restart");
    // The uninterrupted reference run holds no WAL at all.
    let reference = Server::start(ServerConfig::default().with_workers(2));
    let (ref_coplan, ref_plan) = churn(&reference);
    reference.shutdown();

    let (entries, coplan, plan) = {
        let server = Server::start(config(&dir));
        let (coplan, plan) = churn(&server);
        assert_eq!(coplan, ref_coplan, "WAL daemon answers like a plain one");
        assert_eq!(plan, ref_plan);
        let entries = stat_u64(&server, "cache", "entries");
        assert_eq!(stat_u64(&server, "registry", "models"), 2);
        assert!(
            stat_u64(&server, "wal", "appended") >= 6,
            "churn was logged"
        );
        // Unclean death: the handle is dropped without shutdown.
        (entries, coplan, plan)
    };

    let revived = Server::start(config(&dir));
    assert_eq!(
        stat_u64(&revived, "registry", "models"),
        2,
        "registry recovered"
    );
    assert_eq!(
        stat_u64(&revived, "cache", "entries"),
        entries,
        "cache recovered entry-for-entry"
    );
    assert!(stat_u64(&revived, "wal", "replayed") > 0);
    // The recovered cache replays the exact bytes the dead daemon (and
    // the uninterrupted reference) served — first request, no warmup.
    let replayed_coplan = revived.handle_line(r#"{"op":"coplan"}"#);
    assert_eq!(replayed_coplan, coplan, "co-plan replay is byte-identical");
    let replayed_plan = revived.handle_line(r#"{"graph":"alexnet","precision":"8"}"#);
    assert_eq!(replayed_plan, plan, "plan replay is byte-identical");
    // Replay is idempotent: a third incarnation sees the same state.
    drop(revived);
    let third = Server::start(config(&dir));
    assert_eq!(stat_u64(&third, "registry", "models"), 2);
    assert_eq!(stat_u64(&third, "cache", "entries"), entries);
    assert_eq!(third.handle_line(r#"{"op":"coplan"}"#), coplan);
    third.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_mid_append_recovers_the_intact_prefix() {
    let dir = wal_dir("torn");
    let coplan = {
        let server = Server::start(config(&dir));
        let (coplan, _) = churn(&server);
        coplan
    };
    // Simulate power loss mid-append: chop into the last WAL record.
    lcmm_serve::wal::truncate_log_tail(&dir, 5).expect("fault injection");
    let revived = Server::start(config(&dir));
    assert!(
        stat_u64(&revived, "wal", "truncated_bytes") > 0,
        "the torn tail was detected and truncated"
    );
    // The torn record was one of the cache puts; everything before it
    // replays. The registry (logged earlier) must be fully intact.
    assert_eq!(stat_u64(&revived, "registry", "models"), 2);
    // Whatever the cache lost is recomputed deterministically: the
    // co-plan reply converges back to the original bytes, cached or
    // not, and the second request replays it verbatim.
    let first = parse(&revived.handle_line(r#"{"op":"coplan"}"#));
    let again = revived.handle_line(r#"{"op":"coplan"}"#);
    assert!(again.contains("\"cached\":true"), "{again}");
    assert_eq!(
        first.get("plan"),
        parse(&coplan).get("plan"),
        "recomputed co-plan matches the pre-crash plan"
    );
    revived.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_recover_starts_cold_and_rebuilds_the_wal() {
    let dir = wal_dir("cold");
    {
        let server = Server::start(config(&dir));
        churn(&server);
    }
    let cold = Server::start(config(&dir).with_recover(false));
    assert_eq!(stat_u64(&cold, "registry", "models"), 0, "state was wiped");
    assert_eq!(stat_u64(&cold, "cache", "entries"), 0);
    assert_eq!(stat_u64(&cold, "wal", "replayed"), 0);
    // The wiped daemon still logs going forward.
    cold.handle_line(r#"{"op":"register","model":"axn","graph":"alexnet","share":0.5}"#);
    assert_eq!(stat_u64(&cold, "wal", "appended"), 1);
    drop(cold);
    let revived = Server::start(config(&dir));
    assert_eq!(stat_u64(&revived, "registry", "models"), 1);
    revived.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
