//! Event-loop transport tests over real TCP sockets: ordered
//! pipelining, half-close draining, mid-response disconnects under
//! load, and a clean shutdown handshake.

use lcmm_serve::{serve_tcp_listener, ServerConfig};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Boots a daemon on an ephemeral port; returns its address and the
/// serving thread (joined by `stop`).
fn boot(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        serve_tcp_listener(config, listener).expect("serve");
    });
    (addr, handle)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    stream
}

/// Sends a shutdown request and joins the serving thread.
fn stop(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let mut conn = connect(addr);
    conn.write_all(b"{\"op\":\"shutdown\"}\n").expect("send");
    let mut line = String::new();
    // The shutdown ack must still be flushed to this client.
    BufReader::new(&conn).read_line(&mut line).expect("ack");
    assert!(line.contains("\"shutdown\":true"), "{line}");
    handle.join().expect("serve thread exits");
}

fn parse(line: &str) -> Value {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("non-JSON response {line:?}: {e}"))
}

#[test]
fn pipelined_requests_are_answered_in_request_order() {
    let (addr, handle) = boot(ServerConfig::default().with_workers(2));
    let mut conn = connect(addr);
    // Three requests in one write: a ping, a real plan, another ping.
    // The pings complete instantly on the event loop while the plan is
    // still computing on a worker — the responses must nevertheless
    // come back in request order.
    conn.write_all(
        b"{\"op\":\"ping\",\"id\":1}\n{\"graph\":\"alexnet\",\"id\":2}\n{\"op\":\"ping\",\"id\":3}\n",
    )
    .expect("send");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut ids = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        let v = parse(&line);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{line}");
        ids.push(v.get("id").and_then(Value::as_u64).expect("id"));
    }
    assert_eq!(ids, vec![1, 2, 3], "responses in request order");
    stop(addr, handle);
}

#[test]
fn half_closed_connection_still_receives_its_responses() {
    let (addr, handle) = boot(ServerConfig::default().with_workers(2));
    let mut conn = connect(addr);
    conn.write_all(b"{\"graph\":\"squeezenet\",\"id\":7}\n")
        .expect("send");
    // Close the write side immediately: the daemon sees EOF while the
    // plan is still computing, and must drain the owed response before
    // dropping the connection.
    conn.shutdown(Shutdown::Write).expect("half-close");
    let mut line = String::new();
    BufReader::new(&conn)
        .read_line(&mut line)
        .expect("response");
    let v = parse(&line);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{line}");
    assert_eq!(v.get("id").and_then(Value::as_u64), Some(7));
    stop(addr, handle);
}

#[test]
fn disconnect_mid_response_under_load_only_drops_that_connection() {
    let (addr, handle) = boot(ServerConfig::default().with_workers(2));
    // A dozen clients each submit a plan and vanish without reading the
    // response: every write of those responses fails. Before the event
    // loop, an `Err` on the write path could take down the acceptor.
    for i in 0..12 {
        let mut conn = connect(addr);
        conn.write_all(format!("{{\"graph\":\"synthetic:32x3x{i}\",\"id\":{i}}}\n").as_bytes())
            .expect("send");
        // Drop with data in flight; RST rather than graceful close.
        drop(conn);
    }
    // The daemon must still accept and serve new clients.
    let mut conn = connect(addr);
    conn.write_all(b"{\"op\":\"ping\",\"id\":99}\n{\"graph\":\"alexnet\",\"id\":100}\n")
        .expect("send");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    for expected in [99u64, 100] {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        let v = parse(&line);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{line}");
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(expected));
    }
    stop(addr, handle);
}

#[test]
fn concurrent_connections_multiplex_on_one_event_loop() {
    let (addr, handle) = boot(ServerConfig::default().with_workers(4));
    let mut clients = Vec::new();
    for i in 0..8u64 {
        clients.push(std::thread::spawn(move || {
            let mut conn = connect(addr);
            let line = format!("{{\"graph\":\"synthetic:24x3x{i}\",\"id\":{i}}}\n");
            conn.write_all(line.as_bytes()).expect("send");
            let mut response = String::new();
            BufReader::new(&conn)
                .read_line(&mut response)
                .expect("response");
            let v = parse(&response);
            assert_eq!(
                v.get("ok").and_then(Value::as_bool),
                Some(true),
                "{response}"
            );
            assert_eq!(v.get("id").and_then(Value::as_u64), Some(i));
        }));
    }
    for client in clients {
        client.join().expect("client thread");
    }
    stop(addr, handle);
}
