//! Protocol-compatibility suite for the frozen v1 surface.
//!
//! Every request form the daemon has ever answered (plans, options,
//! registry mutations, co-plans, routes, pings, typed errors) must keep
//! answering **byte-identically** now that responses can carry a
//! version echo — and the versioned twin of each request must answer
//! with exactly the legacy bytes plus a trailing `,"v":1`.
//!
//! The corpus sticks to idempotent, deterministic exchanges: each
//! legacy form is sent twice (the second answer is the cached replay,
//! which is the stable encoding) and then once more with `"v":1`.

use lcmm_serve::{Server, ServerConfig};
use serde_json::Value;

fn parse(line: &str) -> Value {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("non-JSON response {line:?}: {e}"))
}

/// Inserts `,"v":1` before the closing brace of a response line — the
/// whole difference the version echo is allowed to make.
fn with_v1(line: &str) -> String {
    let body = line.strip_suffix('}').expect("responses are objects");
    format!("{body},\"v\":1}}")
}

/// Adds `"v":1` to a request line (as the first field; field order in
/// requests is free).
fn versioned(line: &str) -> String {
    let rest = line.strip_prefix('{').expect("requests are objects");
    format!("{{\"v\":1,{rest}")
}

/// The pre-versioning request corpus: every deterministic form from the
/// daemon's history — minimal plans, full option sets, weight
/// streaming, synthetic and inline graphs, co-plans and routes, and
/// typed errors. (`stats` is excluded — uptime is wall-clock — and
/// mutations are set up once, outside the corpus.)
fn corpus() -> Vec<String> {
    let inline = serde_json::to_string(&lcmm_graph::zoo::alexnet()).expect("graph serialises");
    vec![
        r#"{"op":"ping"}"#.to_string(),
        r#"{"op":"ping","id":7}"#.to_string(),
        r#"{"graph":"alexnet"}"#.to_string(),
        r#"{"graph":"alexnet","precision":"8","allocator":"greedy"}"#.to_string(),
        r#"{"graph":"squeezenet","options":{"feature_reuse":false,"splitting":false}}"#.to_string(),
        r#"{"graph":"alexnet","options":{"weight_streaming":"auto","tensor_budget":2000000}}"#
            .to_string(),
        r#"{"graph":"mobilenet","options":{"fusion":"auto","tensor_budget":2000000}}"#.to_string(),
        r#"{"graph":"mobilenet","options":{"fusion":"off"}}"#.to_string(),
        r#"{"graph":"synthetic:48x3x5","id":11}"#.to_string(),
        format!("{{\"graph\":{{\"inline\":{inline}}}}}"),
        r#"{"op":"coplan"}"#.to_string(),
        r#"{"op":"route","model":"alexnet"}"#.to_string(),
        // Typed errors are part of the surface too.
        r#"{"graph":"nonexistent-net"}"#.to_string(),
        r#"{"graph":"alexnet","device":"asic","id":3}"#.to_string(),
        r#"{"op":"route","model":"not-registered"}"#.to_string(),
    ]
}

#[test]
fn v1_answers_every_legacy_form_byte_identically() {
    let server = Server::start(ServerConfig::default().with_workers(2));
    // Registry setup so coplan/route have tenants to work with.
    for reg in [
        r#"{"op":"register","model":"alexnet","graph":"alexnet"}"#,
        r#"{"op":"register","model":"squeezenet","graph":"squeezenet","weight":2.0}"#,
    ] {
        let v = parse(&server.handle_line(reg));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "setup: {reg}");
    }
    for line in corpus() {
        // First send computes (or errors); the second replay is the
        // stable encoding every later duplicate must reproduce.
        let _warm = server.handle_line(&line);
        let legacy = server.handle_line(&line);
        let repeat = server.handle_line(&line);
        assert_eq!(legacy, repeat, "legacy replay must be byte-stable: {line}");
        assert!(
            !legacy.contains("\"v\""),
            "legacy responses must not grow a version echo: {legacy}"
        );
        let versioned_reply = server.handle_line(&versioned(&line));
        assert_eq!(
            versioned_reply,
            with_v1(&legacy),
            "v1 must be the legacy bytes plus a trailing version echo: {line}"
        );
        assert!(parse(&versioned_reply).get("v").is_some());
    }
    server.shutdown();
}

#[test]
fn registry_mutations_echo_the_version() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    let reg = parse(
        &server.handle_line(r#"{"v":1,"op":"register","model":"m","graph":"alexnet","id":5}"#),
    );
    assert_eq!(reg.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(reg.get("v"), Some(&Value::U64(1)));
    let unreg = parse(&server.handle_line(r#"{"v":1,"op":"unregister","model":"m"}"#));
    assert_eq!(unreg.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(unreg.get("v"), Some(&Value::U64(1)));
    // And without the version the echo stays absent.
    let reg2 = parse(&server.handle_line(r#"{"op":"register","model":"m","graph":"alexnet"}"#));
    assert!(reg2.get("v").is_none());
    server.shutdown();
}

#[test]
fn future_versions_are_rejected_with_a_typed_error() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    for line in [
        r#"{"v":2,"op":"ping"}"#,
        r#"{"v":0,"graph":"alexnet","id":9}"#,
        r#"{"v":99,"op":"stats"}"#,
    ] {
        let v = parse(&server.handle_line(line));
        assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{line}");
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str),
            Some("unsupported_version"),
            "{line}"
        );
        // No version echo on the rejection: no version was agreed.
        assert!(v.get("v").is_none(), "{line}");
    }
    // Ill-typed versions are plain bad requests.
    let v = parse(&server.handle_line(r#"{"v":"one","op":"ping"}"#));
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("bad_request")
    );
    server.shutdown();
}

#[test]
fn the_workload_op_runs_and_caches_under_v1() {
    let server = Server::start(ServerConfig::default().with_workers(2));
    let line = r#"{"v":1,"op":"workload","models":"alexnet,squeezenet","trace":"replay:0,0.01,0.02;replay:0.005","steps":2,"id":21}"#;
    let first = parse(&server.handle_line(line));
    assert_eq!(first.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(first.get("cached"), Some(&Value::Bool(false)));
    assert_eq!(first.get("v"), Some(&Value::U64(1)));
    let plan = first.get("plan").expect("workload report");
    assert!(plan.get("worst_p99_seconds").is_some());
    assert!(plan.get("controller_beats_best_static").is_some());
    let second = parse(&server.handle_line(line));
    assert_eq!(second.get("cached"), Some(&Value::Bool(true)));
    assert_eq!(
        second.get("plan"),
        first.get("plan"),
        "cache replay differs"
    );
    // Unknown models and missing fields are typed errors.
    let bad = parse(&server.handle_line(r#"{"op":"workload","models":"alexnet,frob-net"}"#));
    assert_eq!(
        bad.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str),
        Some("unknown_model")
    );
    let missing = parse(&server.handle_line(r#"{"op":"workload"}"#));
    assert_eq!(missing.get("ok"), Some(&Value::Bool(false)));
    server.shutdown();
}
