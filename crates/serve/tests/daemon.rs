//! In-process daemon integration tests: 64 concurrent requests with
//! duplicates, deadlines, admission pressure, and a draining shutdown.
//!
//! These drive [`Server::handle_line`] directly from client threads —
//! the same transport-independent path the stdio/TCP/Unix loops use —
//! so the whole daemon contract is tested without opening sockets.

use lcmm_serve::{Server, ServerConfig};
use serde_json::Value;
use std::sync::Arc;

fn parse(line: &str) -> Value {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("non-JSON response {line:?}: {e}"))
}

fn error_code(v: &Value) -> Option<String> {
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str)
        .map(str::to_string)
}

fn stat_u64(server: &Server, section: &str, field: &str) -> u64 {
    let v = parse(&server.handle_line(r#"{"op":"stats"}"#));
    v.get("stats")
        .and_then(|s| s.get(section))
        .and_then(|s| s.get(field))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing stats.{section}.{field}"))
}

/// The tentpole acceptance test: 64 concurrent requests — 16 duplicates
/// of one plan, a mixed zoo/synthetic load, and a batch of
/// already-expired deadlines — answered with zero panics, byte-identical
/// cache hits, and typed timeout errors.
#[test]
fn sixty_four_concurrent_requests() {
    let server = Arc::new(Server::start(
        ServerConfig::default()
            .with_workers(4)
            .with_queue_capacity(64),
    ));
    let duplicate_line = r#"{"graph":"alexnet","precision":"8"}"#;
    let mut handles = Vec::new();
    for i in 0..64u64 {
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            let line = match i % 4 {
                // 16 byte-identical duplicates — must collapse onto one
                // cached plan.
                0 => duplicate_line.to_string(),
                // 16 already-expired deadlines on big unique graphs —
                // must come back as typed timeouts, not hang or panic.
                1 => format!(r#"{{"graph":"synthetic:512x4x{i}","deadline_ms":0,"id":{i}}}"#),
                // Unique small synthetics.
                2 => format!(r#"{{"graph":"synthetic:48x3x{i}","id":{i}}}"#),
                // Zoo models (repeated across threads — more duplicates).
                _ => {
                    let model =
                        ["alexnet", "squeezenet", "googlenet", "vgg16"][(i as usize / 4) % 4];
                    format!(r#"{{"graph":"{model}","id":{i}}}"#)
                }
            };
            (i, server.handle_line(&line))
        }));
    }
    let mut duplicate_responses = Vec::new();
    for handle in handles {
        let (i, line) = handle.join().expect("client thread must not panic");
        let v = parse(&line);
        match i % 4 {
            0 => duplicate_responses.push((line.clone(), v)),
            1 => {
                assert_eq!(
                    error_code(&v).as_deref(),
                    Some("timeout"),
                    "expired deadline must time out: {line}"
                );
                assert_eq!(v.get("id").and_then(Value::as_u64), Some(i));
            }
            _ => {
                assert_eq!(
                    v.get("ok").and_then(Value::as_bool),
                    Some(true),
                    "plan failed: {line}"
                );
                assert_eq!(v.get("id").and_then(Value::as_u64), Some(i));
            }
        }
    }
    // Every duplicate answered with the same plan payload...
    assert_eq!(duplicate_responses.len(), 16);
    let reference = duplicate_responses[0].1.get("plan").cloned().expect("plan");
    for (line, v) in &duplicate_responses {
        assert_eq!(v.get("plan"), Some(&reference), "divergent plan: {line}");
    }
    // ...and the cache-hit responses are byte-identical whole lines.
    // With 4 workers and 16 duplicates, at most 4 can miss concurrently
    // before a finished compute has populated the cache.
    let hits: Vec<&String> = duplicate_responses
        .iter()
        .filter(|(_, v)| v.get("cached").and_then(Value::as_bool) == Some(true))
        .map(|(line, _)| line)
        .collect();
    assert!(hits.len() >= 12, "only {} cache hits", hits.len());
    for hit in &hits {
        assert_eq!(*hit, hits[0], "cache hits must be byte-identical");
    }
    // The counters saw everything: 64 plans, no rejections at capacity 64.
    assert_eq!(stat_u64(&server, "requests", "total"), 64);
    assert_eq!(stat_u64(&server, "requests", "rejected"), 0);
    assert_eq!(stat_u64(&server, "requests", "errors"), 16);
    assert_eq!(stat_u64(&server, "requests", "completed"), 48);
    assert!(stat_u64(&server, "cache", "hits") >= 12);
    server.shutdown();
}

/// Admission control: with one worker and a queue bound of 1, a second
/// plan is rejected with `queue_full` while the first is still running.
#[test]
fn full_queue_rejects_with_admission_error() {
    let server = Arc::new(Server::start(
        ServerConfig::default()
            .with_workers(1)
            .with_queue_capacity(1),
    ));
    let slow = Arc::clone(&server);
    let blocker = std::thread::spawn(move || {
        // A unique several-thousand-node graph keeps the single worker
        // busy long enough to observe the full queue.
        slow.handle_line(r#"{"graph":"synthetic:3072x4x424242","id":1}"#)
    });
    // Wait until the slow plan occupies the system (queued or in flight).
    let mut occupied = false;
    for _ in 0..2000 {
        let depth = stat_u64(&server, "queue", "depth");
        let in_flight = stat_u64(&server, "queue", "in_flight");
        if depth + in_flight >= 1 {
            occupied = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(occupied, "slow plan never showed up in the queue stats");
    let rejected = parse(&server.handle_line(r#"{"graph":"alexnet","id":2}"#));
    assert_eq!(error_code(&rejected).as_deref(), Some("queue_full"));
    assert_eq!(rejected.get("id").and_then(Value::as_u64), Some(2));
    // Non-plan ops bypass admission and still answer while full.
    assert!(server.handle_line(r#"{"op":"ping"}"#).contains("pong"));
    // The occupying plan still completes.
    let done = parse(&blocker.join().expect("blocked client must not panic"));
    assert_eq!(done.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(stat_u64(&server, "requests", "rejected"), 1);
    server.shutdown();
}

/// Graceful shutdown: admitted plans drain to completion, late plans
/// are refused with `shutting_down`, and `shutdown()` joins cleanly.
#[test]
fn shutdown_drains_in_flight_work() {
    let server = Arc::new(Server::start(
        ServerConfig::default()
            .with_workers(2)
            .with_queue_capacity(16),
    ));
    let mut clients = Vec::new();
    for i in 0..6u64 {
        let server = Arc::clone(&server);
        clients.push(std::thread::spawn(move || {
            server.handle_line(&format!(r#"{{"graph":"synthetic:96x3x{i}","id":{i}}}"#))
        }));
    }
    // Let the clients get admitted, then start draining.
    let mut admitted = 0;
    for _ in 0..2000 {
        admitted = stat_u64(&server, "requests", "total");
        if admitted == 6 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(admitted, 6, "clients were not admitted in time");
    server.shutdown();
    for client in clients {
        let v = parse(&client.join().expect("draining client must not panic"));
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(true),
            "admitted plan was dropped during shutdown"
        );
    }
    let late = parse(&server.handle_line(r#"{"graph":"alexnet"}"#));
    assert_eq!(error_code(&late).as_deref(), Some("shutting_down"));
    // Idempotent: a second shutdown is a no-op.
    server.shutdown();
}

/// Registry churn that does not touch a co-plan's own tenants leaves
/// that cached co-plan alone: the key covers the full tenant set, so
/// the old entry can never answer the new registry, and restoring the
/// original set replays it byte-identically from cache.
#[test]
fn registry_churn_preserves_unrelated_coplans() {
    let server = Server::start(ServerConfig::default().with_workers(2));
    // Explicit shares keep the test off the (slower) split search.
    let reg = |model: &str, graph: &str, share: f64| {
        let v = parse(&server.handle_line(&format!(
            r#"{{"op":"register","model":"{model}","graph":"{graph}","share":{share}}}"#
        )));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    };
    reg("axn", "alexnet", 0.5);
    reg("sqz", "squeezenet", 0.5);
    assert_eq!(stat_u64(&server, "registry", "models"), 2);

    let first = server.handle_line(r#"{"op":"coplan"}"#);
    let first_v = parse(&first);
    assert_eq!(first_v.get("cached").and_then(Value::as_bool), Some(false));
    let replay = parse(&server.handle_line(r#"{"op":"coplan"}"#));
    assert_eq!(replay.get("cached").and_then(Value::as_bool), Some(true));
    assert_eq!(replay.get("plan"), first_v.get("plan"));
    // Routes share the cached co-plan entry.
    let routed = parse(&server.handle_line(r#"{"op":"route","model":"axn"}"#));
    assert_eq!(routed.get("cached").and_then(Value::as_bool), Some(true));
    assert_eq!(
        routed
            .get("plan")
            .and_then(|p| p.get("model"))
            .and_then(Value::as_str),
        Some("axn")
    );
    assert_eq!(stat_u64(&server, "cache", "invalidations"), 0);

    // A third tenant changes the registry, so the next co-plan keys
    // differently — but the {axn, sqz} entry is not stale (its key
    // names its exact tenant set) and must not be reclaimed.
    reg("mbn", "mobilenet", 0.0001);
    assert_eq!(stat_u64(&server, "cache", "invalidations"), 0);
    let removed = parse(&server.handle_line(r#"{"op":"unregister","model":"mbn"}"#));
    assert_eq!(removed.get("models").and_then(Value::as_u64), Some(2));
    // Restoring the original tenant set replays the surviving entry.
    let restored = parse(&server.handle_line(r#"{"op":"coplan"}"#));
    assert_eq!(
        restored.get("cached").and_then(Value::as_bool),
        Some(true),
        "untouched tenant set must keep its cached co-plan across churn"
    );
    assert_eq!(restored.get("plan"), first_v.get("plan"));
    server.shutdown();
}

/// Mutating one registered model evicts exactly the co-plans that
/// inlined it — counted once per entry — while content-addressed
/// single-model plan entries survive, and a content-identical
/// re-registration invalidates nothing.
#[test]
fn model_mutation_invalidates_exactly_its_coplans() {
    let server = Server::start(ServerConfig::default().with_workers(2));
    let reg = |model: &str, graph: &str, share: f64| {
        let v = parse(&server.handle_line(&format!(
            r#"{{"op":"register","model":"{model}","graph":"{graph}","share":{share}}}"#
        )));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    };
    reg("axn", "alexnet", 0.5);
    reg("sqz", "squeezenet", 0.5);

    // One single-model plan entry (content-addressed key) ...
    let plan = parse(&server.handle_line(r#"{"graph":"alexnet"}"#));
    assert_eq!(plan.get("cached").and_then(Value::as_bool), Some(false));
    // ... and one co-plan entry tagged model:axn + model:sqz.
    let coplan = parse(&server.handle_line(r#"{"op":"coplan"}"#));
    assert_eq!(coplan.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(stat_u64(&server, "cache", "entries"), 2);
    assert_eq!(stat_u64(&server, "cache", "invalidations"), 0);

    // Content-identical re-registration is a no-op: nothing evicted,
    // the co-plan still replays from cache.
    reg("axn", "alexnet", 0.5);
    assert_eq!(stat_u64(&server, "cache", "entries"), 2);
    assert_eq!(stat_u64(&server, "cache", "invalidations"), 0);
    let replay = parse(&server.handle_line(r#"{"op":"coplan"}"#));
    assert_eq!(replay.get("cached").and_then(Value::as_bool), Some(true));

    // Re-registering axn with a different graph drops the co-plan that
    // inlined it — exactly one entry, counted exactly once even though
    // the entry carried two tags — but the alexnet plan entry is
    // content-addressed, never stale, and must survive.
    reg("axn", "mobilenet", 0.5);
    assert_eq!(stat_u64(&server, "cache", "entries"), 1);
    assert_eq!(stat_u64(&server, "cache", "invalidations"), 1);
    let survivor = parse(&server.handle_line(r#"{"graph":"alexnet"}"#));
    assert_eq!(
        survivor.get("cached").and_then(Value::as_bool),
        Some(true),
        "single-model plan entries are content-addressed and survive churn"
    );
    assert_eq!(survivor.get("plan"), plan.get("plan"));

    // The mutated registry co-plans fresh, then unregistering axn
    // evicts that entry too (second invalidation).
    let fresh = parse(&server.handle_line(r#"{"op":"coplan"}"#));
    assert_eq!(fresh.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(stat_u64(&server, "cache", "entries"), 2);
    let gone = parse(&server.handle_line(r#"{"op":"unregister","model":"axn"}"#));
    assert_eq!(gone.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(stat_u64(&server, "cache", "entries"), 1);
    assert_eq!(stat_u64(&server, "cache", "invalidations"), 2);
    server.shutdown();
}

/// The `/stats` cache section reports LRU evictions.
#[test]
fn stats_report_cache_evictions() {
    let server = Server::start(
        ServerConfig::default()
            .with_workers(1)
            .with_cache_capacity(1),
    );
    assert_eq!(stat_u64(&server, "cache", "evictions"), 0);
    server.handle_line(r#"{"graph":"alexnet"}"#);
    server.handle_line(r#"{"graph":"squeezenet"}"#);
    assert_eq!(stat_u64(&server, "cache", "evictions"), 1);
    assert_eq!(stat_u64(&server, "cache", "entries"), 1);
    server.shutdown();
}

/// Malformed and unresolvable requests get typed errors and never take
/// the daemon down.
#[test]
fn bad_requests_keep_the_daemon_alive() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    let cases = [
        ("{\"graph\":", "bad_request"),
        (r#"{"graph":"made-up-net"}"#, "unknown_model"),
        (r#"{"graph":"alexnet","device":"tpu"}"#, "unknown_device"),
        (r#"{"graph":"alexnet","precision":"12"}"#, "bad_request"),
        (r#"{"graph":"alexnet","allocator":"magic"}"#, "bad_request"),
        (r#"{"op":"plan"}"#, "bad_request"),
        (r#"{"graph":{"synthetic":{"depth":0}}}"#, "bad_request"),
    ];
    for (line, expected) in cases {
        let v = parse(&server.handle_line(line));
        assert_eq!(
            error_code(&v).as_deref(),
            Some(expected),
            "wrong code for {line}"
        );
    }
    let ok = parse(&server.handle_line(r#"{"graph":"alexnet"}"#));
    assert_eq!(ok.get("ok").and_then(Value::as_bool), Some(true));
    server.shutdown();
}
