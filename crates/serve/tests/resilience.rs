//! Panic-containment and health-watcher tests, driven through the
//! `debug:` fault-injection hooks: an injected worker panic, a
//! genuinely poisoned shared lock, and a wedged worker must each leave
//! the daemon fully serviceable.

use lcmm_serve::{Server, ServerConfig};
use serde_json::Value;
use std::time::{Duration, Instant};

fn parse(line: &str) -> Value {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("non-JSON response {line:?}: {e}"))
}

fn error_code(line: &str) -> Option<String> {
    parse(line)
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str)
        .map(str::to_string)
}

fn stat_u64(server: &Server, section: &str, field: &str) -> u64 {
    let v = parse(&server.handle_line(r#"{"op":"stats"}"#));
    v.get("stats")
        .and_then(|s| s.get(section))
        .and_then(|s| s.get(field))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing stats.{section}.{field}"))
}

#[test]
fn injected_panic_is_contained_and_requests_keep_succeeding() {
    let server = Server::start(
        ServerConfig::default()
            .with_workers(2)
            .with_debug_hooks(true),
    );
    let crash = server.handle_line(r#"{"graph":"debug:panic","id":1}"#);
    assert_eq!(error_code(&crash).as_deref(), Some("internal_error"));
    assert!(crash.contains("injected worker panic"), "{crash}");
    // The panic was caught inside the worker: subsequent unrelated
    // requests succeed on the same pool.
    for _ in 0..3 {
        let ok = server.handle_line(r#"{"graph":"alexnet"}"#);
        assert!(ok.contains("\"ok\":true"), "{ok}");
    }
    assert!(stat_u64(&server, "requests", "errors") >= 1);
    server.shutdown();
}

#[test]
fn poisoned_shared_lock_is_recovered_not_propagated() {
    let server = Server::start(
        ServerConfig::default()
            .with_workers(2)
            .with_debug_hooks(true),
    );
    // The hook genuinely poisons the histograms mutex (a panic while
    // holding it) and then panics in the worker too.
    let crash = server.handle_line(r#"{"graph":"debug:poison","id":1}"#);
    assert_eq!(error_code(&crash).as_deref(), Some("internal_error"));
    // Before the sweep this next line crashed the daemon: stats locks
    // the poisoned histograms mutex.
    let stats = server.handle_line(r#"{"op":"stats"}"#);
    assert!(stats.contains("\"ok\":true"), "{stats}");
    // And a computed plan records into the same poisoned lock.
    let plan = server.handle_line(r#"{"graph":"squeezenet"}"#);
    assert!(plan.contains("\"ok\":true"), "{plan}");
    server.shutdown();
}

#[test]
fn stalled_worker_is_recycled_with_a_typed_error() {
    let server = Server::start(
        ServerConfig::default()
            .with_workers(1)
            .with_debug_hooks(true)
            .with_stall_budget(Some(Duration::from_millis(150))),
    );
    // One worker, wedged for far longer than the stall budget: the
    // watcher must fail the request instead of hanging this thread.
    let started = Instant::now();
    let stuck = server.handle_line(r#"{"graph":"debug:stall:60000","id":9}"#);
    assert_eq!(
        error_code(&stuck).as_deref(),
        Some("worker_recycled"),
        "{stuck}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "recycle must beat the 60s stall by a wide margin"
    );
    assert_eq!(parse(&stuck).get("id").and_then(Value::as_u64), Some(9));
    // The replacement worker serves immediately — the pool never
    // shrank, even with workers=1.
    let ok = server.handle_line(r#"{"graph":"alexnet"}"#);
    assert!(ok.contains("\"ok\":true"), "{ok}");
    assert_eq!(stat_u64(&server, "health", "recycled"), 1);
    server.shutdown();
}
