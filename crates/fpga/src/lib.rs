//! FPGA device and accelerator performance model for the LCMM framework.
//!
//! This crate replaces the paper's Vivado-HLS + VU9P hardware substrate
//! with an analytic model of the same accelerator family: the systolic
//! convolution array of Wei et al. (DAC'17, reference \[18\] of the LCMM
//! paper), attached to four DDR4 banks. The memory manager in `lcmm-core`
//! optimises exactly the quantities this crate computes — per-layer
//! compute latency and per-tensor off-chip transfer latency (the
//! "operation latency table" of the paper's Fig. 7(c)).
//!
//! # Quick tour
//!
//! ```
//! use lcmm_fpga::{AccelDesign, Device, Precision};
//!
//! let graph = lcmm_graph::zoo::googlenet();
//! let design = AccelDesign::explore(&graph, &Device::vu9p(), Precision::Fix16);
//! let profile = design.profile(&graph);
//!
//! // Every node gets a latency breakdown.
//! assert_eq!(profile.per_node.len(), graph.len());
//! assert!(profile.total_latency() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod design;
mod device;
mod latency;
mod precision;
mod tiling;

pub mod resources;
pub mod roofline;

pub use array::SystolicArray;
pub use design::AccelDesign;
pub use device::{DdrConfig, Device, DDR_CHUNK_OVERHEAD_BYTES};
pub use latency::{resolved_sources, Boundedness, GraphProfile, OpLatency, TensorKind};
pub use precision::Precision;
pub use resources::{MemoryPacking, ResourceReport};
pub use tiling::{
    choose_tiling, choose_tiling_uncached, tiling_cache_entries, LoopOrder, TileBudget, TileChoice,
};
