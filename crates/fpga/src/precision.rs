//! Numeric precision of the datapath.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Datapath precision, matching the three configurations the paper
/// evaluates (Table 1).
///
/// The DSP cost follows the paper's §4.1: a fixed-point MAC costs one
/// DSP48 slice, a single-precision floating-point MAC costs five.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 8-bit fixed point.
    Fix8,
    /// 16-bit fixed point.
    Fix16,
    /// 32-bit IEEE-754 single precision.
    Float32,
}

impl Precision {
    /// All three evaluated precisions, in the paper's table order.
    pub const ALL: [Precision; 3] = [Precision::Fix8, Precision::Fix16, Precision::Float32];

    /// Bytes per tensor element.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            Precision::Fix8 => 1,
            Precision::Fix16 => 2,
            Precision::Float32 => 4,
        }
    }

    /// DSP48 slices consumed by `macs` MAC units.
    ///
    /// 16-bit MACs map one-to-one onto DSP48 slices. 8-bit MACs benefit
    /// from partial INT8 operand packing — two multiplies share a DSP
    /// when they share an operand — modelled as 1.5 MACs per slice.
    /// fp32 MACs cost four slices (3 for the multiplier, shared logic
    /// for the adder; the paper's §4.1 quotes five for an unfused
    /// implementation).
    #[must_use]
    pub fn dsp_cost(self, macs: usize) -> usize {
        match self {
            Precision::Fix8 => (macs * 2).div_ceil(3),
            Precision::Fix16 => macs,
            Precision::Float32 => macs * 4,
        }
    }

    /// Bytes of a tensor with `elems` elements at this precision.
    #[must_use]
    pub fn tensor_bytes(self, elems: u64) -> u64 {
        elems * self.bytes()
    }

    /// Short label used in report rows (`8-bit`, `16-bit`, `32-bit`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Precision::Fix8 => "8-bit",
            Precision::Fix16 => "16-bit",
            Precision::Float32 => "32-bit",
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_and_dsps() {
        assert_eq!(Precision::Fix8.bytes(), 1);
        assert_eq!(Precision::Fix16.bytes(), 2);
        assert_eq!(Precision::Float32.bytes(), 4);
        assert_eq!(Precision::Fix8.dsp_cost(3), 2);
        assert_eq!(Precision::Fix8.dsp_cost(4), 3); // rounds up
        assert_eq!(Precision::Fix16.dsp_cost(100), 100);
        assert_eq!(Precision::Float32.dsp_cost(10), 40);
    }

    #[test]
    fn tensor_bytes_scales() {
        assert_eq!(Precision::Fix16.tensor_bytes(1000), 2000);
    }

    #[test]
    fn labels_match_paper_rows() {
        let labels: Vec<&str> = Precision::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["8-bit", "16-bit", "32-bit"]);
    }
}
