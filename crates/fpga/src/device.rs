//! FPGA device resources and the off-chip memory system.

use serde::{Deserialize, Serialize};

/// A 36-Kb BRAM block's capacity in bytes.
pub const BRAM_BLOCK_BYTES: u64 = 36 * 1024 / 8;
/// A 288-Kb URAM block's capacity in bytes.
pub const URAM_BLOCK_BYTES: u64 = 288 * 1024 / 8;

/// The DDR memory system attached to the FPGA.
///
/// The paper's setup: four DDR4 banks of 19.2 GB/s theoretical bandwidth,
/// with the three tensor interfaces (input features, weights, output
/// features) each assigned one third of the aggregate
/// (`19.2 × 4 / 3 = 25.6 GB/s`, §2.2).
///
/// `access_efficiency` models the fraction of theoretical bandwidth that
/// tiled tensor traffic actually sustains. Tile-by-tile accesses issue
/// short, strided bursts that pay DRAM row-activation and bus-turnaround
/// penalties on every tile row; published measurements for this access
/// pattern on DDR4 land in the 15–35 % range, and the paper's own
/// motivation (layers "needing 70 GB/s" against a 19.2 GB/s bank) only
/// arises under such derating. The default, 0.21, is calibrated so that
/// the Table 1 reproduction lands at the paper's 1.36× average speedup
/// and a comparable memory-bound layer population; see DESIGN.md §2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdrConfig {
    /// Number of DDR banks.
    pub banks: usize,
    /// Theoretical bandwidth per bank, bytes per second.
    pub bank_bandwidth: f64,
    /// Fraction of aggregate bandwidth assigned to each of the three
    /// tensor interfaces.
    pub interface_share: f64,
    /// Sustained fraction of theoretical bandwidth for tiled tensor
    /// traffic.
    pub access_efficiency: f64,
}

impl DdrConfig {
    /// The paper's four-bank DDR4 configuration.
    #[must_use]
    pub fn ddr4_x4() -> Self {
        Self {
            banks: 4,
            bank_bandwidth: 19.2e9,
            interface_share: 1.0 / 3.0,
            access_efficiency: 0.21,
        }
    }

    /// Theoretical aggregate bandwidth across all banks, bytes/s.
    #[must_use]
    pub fn aggregate_bandwidth(&self) -> f64 {
        self.banks as f64 * self.bank_bandwidth
    }

    /// Theoretical bandwidth assigned to one tensor interface, bytes/s.
    #[must_use]
    pub fn interface_bandwidth(&self) -> f64 {
        self.aggregate_bandwidth() * self.interface_share
    }

    /// Sustained (derated) bandwidth of one tensor interface, bytes/s —
    /// the number every transfer-latency estimate divides by.
    #[must_use]
    pub fn effective_interface_bandwidth(&self) -> f64 {
        self.interface_bandwidth() * self.access_efficiency
    }

    /// Access efficiency as a function of the contiguous chunk size of
    /// a transfer: each chunk pays a fixed row-activation/turnaround
    /// cost equivalent to [`DDR_CHUNK_OVERHEAD_BYTES`] of bus time, so
    /// `eff = chunk / (chunk + overhead)`.
    ///
    /// This is the *granular* alternative to the flat
    /// `access_efficiency` knob: a 112-byte feature row (56-wide fmap at
    /// 16-bit) sustains ≈ 0.21 of peak — the calibrated uniform value —
    /// while multi-KB weight streams approach 0.9.
    #[must_use]
    pub fn chunk_efficiency(&self, chunk_bytes: u64) -> f64 {
        let c = chunk_bytes.max(1) as f64;
        c / (c + DDR_CHUNK_OVERHEAD_BYTES)
    }

    /// Sustained bandwidth of one interface for transfers whose
    /// contiguous chunks are `chunk_bytes` long.
    #[must_use]
    pub fn granular_interface_bandwidth(&self, chunk_bytes: u64) -> f64 {
        self.interface_bandwidth() * self.chunk_efficiency(chunk_bytes)
    }
}

/// Fixed per-chunk cost of a DRAM access in bus-byte equivalents
/// (row activation + precharge + read latency + turnaround at DDR4
/// timing, ≈ 17 ns on a 25.6 GB/s stream).
pub const DDR_CHUNK_OVERHEAD_BYTES: f64 = 430.0;

/// An FPGA device: compute and memory resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Device name, e.g. `"xcvu9p"`.
    pub name: String,
    /// Total DSP48 slices.
    pub dsp_slices: usize,
    /// Total 36-Kb BRAM blocks.
    pub bram_blocks: usize,
    /// Total 288-Kb URAM blocks.
    pub uram_blocks: usize,
    /// Total CLB LUTs (used only for the utilisation columns of the
    /// report tables; the model never gates on logic).
    pub clb_luts: usize,
    /// The attached DDR system.
    pub ddr: DdrConfig,
}

impl Device {
    /// The Xilinx Virtex UltraScale+ VU9P used throughout the paper:
    /// 6840 DSPs, 2160 BRAM36, 960 URAM288, ~1.18 M LUTs.
    #[must_use]
    pub fn vu9p() -> Self {
        Self {
            name: "xcvu9p".to_string(),
            dsp_slices: 6840,
            bram_blocks: 2160,
            uram_blocks: 960,
            clb_luts: 1_182_000,
            ddr: DdrConfig::ddr4_x4(),
        }
    }

    /// The Xilinx VU13P: the next device up (12288 DSPs, 2688 BRAM36,
    /// 1280 URAM288) with the same four-bank DDR4 — more compute and
    /// SRAM against unchanged bandwidth, so *more* layers go memory
    /// bound and LCMM has more to recover.
    #[must_use]
    pub fn vu13p() -> Self {
        Self {
            name: "xcvu13p".to_string(),
            dsp_slices: 12_288,
            bram_blocks: 2688,
            uram_blocks: 1280,
            clb_luts: 1_728_000,
            ddr: DdrConfig::ddr4_x4(),
        }
    }

    /// The Xilinx ZU9EG (Zynq UltraScale+ MPSoC, embedded class):
    /// 2520 DSPs, 912 BRAM36, **no URAM**, a single DDR4 channel. The
    /// stress case for LCMM — barely 4 MiB of SRAM to allocate.
    #[must_use]
    pub fn zu9eg() -> Self {
        Self {
            name: "xczu9eg".to_string(),
            dsp_slices: 2520,
            bram_blocks: 912,
            uram_blocks: 0,
            clb_luts: 274_000,
            ddr: DdrConfig {
                banks: 1,
                bank_bandwidth: 19.2e9,
                interface_share: 1.0 / 3.0,
                access_efficiency: 0.21,
            },
        }
    }

    /// Resolves a device by its short CLI/wire name.
    ///
    /// Recognised names: `vu9p`/`xcvu9p`, `vu13p`/`xcvu13p`,
    /// `zu9eg`/`xczu9eg` (case-insensitive).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "vu9p" | "xcvu9p" => Some(Self::vu9p()),
            "vu13p" | "xcvu13p" => Some(Self::vu13p()),
            "zu9eg" | "xczu9eg" => Some(Self::zu9eg()),
            _ => None,
        }
    }

    /// Total BRAM capacity in bytes.
    #[must_use]
    pub fn bram_bytes(&self) -> u64 {
        self.bram_blocks as u64 * BRAM_BLOCK_BYTES
    }

    /// Total URAM capacity in bytes.
    #[must_use]
    pub fn uram_bytes(&self) -> u64 {
        self.uram_blocks as u64 * URAM_BLOCK_BYTES
    }

    /// Total on-chip SRAM (BRAM + URAM) in bytes.
    ///
    /// For the VU9P this is ≈ 43 MB — the "device limit (40 MB)" marked
    /// in the paper's Fig. 2(b).
    #[must_use]
    pub fn sram_bytes(&self) -> u64 {
        self.bram_bytes() + self.uram_bytes()
    }

    /// Peak MAC throughput in operations per second at `freq_hz` for a
    /// design using `dsps` slices at `dsps_per_mac` cost
    /// (2 ops — multiply and add — per MAC per cycle).
    #[must_use]
    pub fn peak_ops(&self, dsps: usize, dsps_per_mac: usize, freq_hz: f64) -> f64 {
        (dsps / dsps_per_mac) as f64 * 2.0 * freq_hz
    }

    /// A tenant's view of this device in a multi-tenant co-plan: DSP
    /// slices and DDR banks are scaled by `share` (rounded down, but a
    /// tenant always keeps at least one bank so the transfer model stays
    /// finite); name and SRAM blocks are unchanged, because SRAM is
    /// partitioned at byte granularity by the joint knapsack, not by the
    /// device view.
    ///
    /// `share == 1.0` returns the device unchanged (bit-identical), so
    /// the single-tenant case degenerates exactly to the whole device.
    /// This is the single-tenant view of [`Device::partition_set`]; use
    /// the set form when partitioning for several tenants at once, so
    /// the views are guaranteed to conserve the physical totals.
    ///
    /// # Panics
    ///
    /// Panics when `share` is not in `(0.0, 1.0]`.
    #[must_use]
    pub fn partition(&self, share: f64) -> Self {
        assert!(
            share > 0.0 && share <= 1.0,
            "partition share {share} out of (0, 1]"
        );
        if share == 1.0 {
            return self.clone();
        }
        self.partition_set(std::slice::from_ref(&share))
            .expect("a single in-range share always fits")
            .pop()
            .expect("partition_set returns one view per share")
    }

    /// Partitions the device across several tenants at once, conserving
    /// the physical totals: the returned views' DSP slices and DDR banks
    /// each sum to at most the parent device's.
    ///
    /// Each resource is apportioned by largest remainder: every tenant
    /// gets `floor(total × share)` units, and the units lost to
    /// flooring (up to `floor(total × Σ shares)`) go to the largest
    /// fractional remainders (ties to the lower index). A tenant whose
    /// quota floors to zero is still bumped to one unit — but only
    /// while the sum fits, first from slack the shares left unclaimed,
    /// then by taking a unit from the largest grant; when even that
    /// cannot cover every tenant (more tenants than physical units) the
    /// split is reported as infeasible instead of overclaiming.
    ///
    /// # Errors
    ///
    /// A share outside `(0, 1]`, shares summing past 1, or more tenants
    /// than DSP slices / DDR banks.
    pub fn partition_set(&self, shares: &[f64]) -> Result<Vec<Self>, String> {
        for &share in shares {
            if !(share.is_finite() && share > 0.0 && share <= 1.0) {
                return Err(format!("partition share {share} out of (0, 1]"));
            }
        }
        let sum: f64 = shares.iter().sum();
        if sum > 1.0 + 1e-9 {
            return Err(format!("partition shares sum to {sum:.6} > 1"));
        }
        let dsp = apportion(self.dsp_slices, shares).map_err(|need| {
            format!(
                "{need} tenants need {need} DSP slices; device has {}",
                self.dsp_slices
            )
        })?;
        let banks = apportion(self.ddr.banks, shares).map_err(|need| {
            format!(
                "{need} tenants need {need} DDR banks; device has {}",
                self.ddr.banks
            )
        })?;
        Ok(shares
            .iter()
            .enumerate()
            .map(|(i, &share)| {
                if share == 1.0 {
                    return self.clone();
                }
                let mut part = self.clone();
                part.dsp_slices = dsp[i];
                part.ddr.banks = banks[i];
                part
            })
            .collect())
    }
}

/// Largest-remainder apportionment of `total` indivisible units over
/// `shares` (each in `(0, 1]`, summing to at most 1): grants sum to at
/// most `total`, every tenant gets at least one unit, and a tenant's
/// grant never exceeds its quota by more than the one unit the floor /
/// minimum rules move. `Err(n)` reports that the `n` tenants cannot all
/// receive a unit.
fn apportion(total: usize, shares: &[f64]) -> Result<Vec<usize>, usize> {
    let n = shares.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n > total {
        return Err(n);
    }
    let quotas: Vec<f64> = shares.iter().map(|&s| total as f64 * s).collect();
    let mut grants: Vec<usize> = quotas.iter().map(|&q| q as usize).collect();
    // The collective entitlement, rounded down (the 1e-9 band absorbs
    // float noise in shares that sum to exactly 1).
    let target = ((quotas.iter().sum::<f64>() + 1e-9).floor() as usize).min(total);
    let mut granted: usize = grants.iter().sum();
    if granted < target {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let ra = quotas[a] - grants[a] as f64;
            let rb = quotas[b] - grants[b] as f64;
            rb.partial_cmp(&ra)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for &i in order.iter().cycle().take(target - granted) {
            grants[i] += 1;
        }
        granted = target;
    }
    // Minimum-one floor, only while the sum fits: free units first,
    // then a unit from the largest grant (first such index).
    for i in 0..n {
        if grants[i] > 0 {
            continue;
        }
        if granted < total {
            grants[i] = 1;
            granted += 1;
        } else {
            let donor = (0..n)
                .max_by(|&a, &b| grants[a].cmp(&grants[b]).then(b.cmp(&a)))
                .filter(|&d| grants[d] > 1)
                .ok_or(n)?;
            grants[donor] -= 1;
            grants[i] = 1;
        }
    }
    Ok(grants)
}

impl Default for Device {
    fn default() -> Self {
        Self::vu9p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vu9p_sram_near_43_mb() {
        let d = Device::vu9p();
        let mb = d.sram_bytes() as f64 / (1024.0 * 1024.0);
        assert!((42.0..45.0).contains(&mb), "got {mb} MiB");
    }

    #[test]
    fn interface_bandwidth_is_25_6_gbps() {
        let ddr = DdrConfig::ddr4_x4();
        assert!((ddr.interface_bandwidth() - 25.6e9).abs() < 1e6);
        assert!(ddr.effective_interface_bandwidth() < ddr.interface_bandwidth());
    }

    #[test]
    fn peak_ops_matches_paper_2_7_tops() {
        // 6840 DSPs x 2 ops x 200 MHz = 2.736 Tops, the paper's "up to
        // 2.7 Tops under 200 MHz".
        let d = Device::vu9p();
        let tops = d.peak_ops(d.dsp_slices, 1, 200e6) / 1e12;
        assert!((2.6..2.8).contains(&tops), "got {tops} Tops");
    }

    #[test]
    fn float_peak_is_one_fifth() {
        let d = Device::vu9p();
        let fx = d.peak_ops(5000, 1, 200e6);
        let fp = d.peak_ops(5000, 5, 200e6);
        assert!((fx / fp - 5.0).abs() < 1e-9);
    }

    #[test]
    fn device_family_ordering() {
        let zu = Device::zu9eg();
        let vu9 = Device::vu9p();
        let vu13 = Device::vu13p();
        assert!(zu.dsp_slices < vu9.dsp_slices && vu9.dsp_slices < vu13.dsp_slices);
        assert!(zu.sram_bytes() < vu9.sram_bytes() && vu9.sram_bytes() < vu13.sram_bytes());
        assert_eq!(zu.uram_blocks, 0);
        // Embedded part has a quarter of the DDR bandwidth.
        assert!(zu.ddr.aggregate_bandwidth() < vu9.ddr.aggregate_bandwidth() / 3.9);
    }

    #[test]
    fn partition_full_share_is_identity() {
        let d = Device::vu9p();
        assert_eq!(d.partition(1.0), d);
    }

    #[test]
    fn partition_scales_dsp_and_banks() {
        let d = Device::vu9p();
        let half = d.partition(0.5);
        assert_eq!(half.dsp_slices, 3420);
        assert_eq!(half.ddr.banks, 2);
        // SRAM is split by the joint knapsack, not the device view.
        assert_eq!(half.sram_bytes(), d.sram_bytes());
        assert_eq!(half.name, d.name);
        // Tiny shares keep at least one bank.
        let sliver = d.partition(0.05);
        assert_eq!(sliver.ddr.banks, 1);
        assert!(sliver.dsp_slices >= 1);
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn partition_rejects_zero_share() {
        let _ = Device::vu9p().partition(0.0);
    }

    #[test]
    fn partition_set_conserves_totals() {
        let d = Device::vu9p();
        // Many small shares used to overclaim banks through the min-1
        // floor (4 × max(1, floor(4 × 0.25-ε)) could exceed 4); the set
        // form must never hand out more than the device has.
        for shares in [
            vec![0.25; 4],
            vec![0.1, 0.1, 0.1, 0.1],
            vec![0.375, 0.625],
            vec![1.0 / 3.0; 3],
            vec![0.05, 0.05, 0.45, 0.45],
        ] {
            let parts = d.partition_set(&shares).expect("feasible split");
            let dsp: usize = parts.iter().map(|p| p.dsp_slices).sum();
            let banks: usize = parts.iter().map(|p| p.ddr.banks).sum();
            assert!(
                dsp <= d.dsp_slices,
                "{shares:?}: {dsp} DSPs > {}",
                d.dsp_slices
            );
            assert!(
                banks <= d.ddr.banks,
                "{shares:?}: {banks} banks > {}",
                d.ddr.banks
            );
            assert!(parts.iter().all(|p| p.dsp_slices >= 1 && p.ddr.banks >= 1));
        }
    }

    #[test]
    fn partition_set_uses_largest_remainders() {
        let d = Device::vu9p();
        // 3/8 and 5/8 of 4 banks floor to (1, 2); the flooring loss goes
        // back to the largest remainder (tie → lower index) so the full
        // entitlement of 4 banks is granted.
        let parts = d.partition_set(&[0.375, 0.625]).expect("feasible");
        assert_eq!([parts[0].ddr.banks, parts[1].ddr.banks], [2, 2]);
        assert_eq!(parts[0].dsp_slices + parts[1].dsp_slices, d.dsp_slices);
        // Exact quarters stay exact — the steps-4 grid is untouched.
        let quarters = d.partition_set(&[0.25, 0.75]).expect("feasible");
        assert_eq!([quarters[0].ddr.banks, quarters[1].ddr.banks], [1, 3]);
        assert_eq!(quarters[0].dsp_slices, 1710);
    }

    #[test]
    fn partition_set_min_one_only_while_it_fits() {
        let d = Device::vu9p(); // 4 DDR banks
                                // Four slivers: every tenant still gets its one bank because
                                // the unclaimed slack covers the bumps.
        let parts = d.partition_set(&[0.01; 4]).expect("fits exactly");
        assert!(parts.iter().all(|p| p.ddr.banks == 1));
        // Five tenants cannot all get a bank: explicit infeasibility,
        // not phantom capacity.
        let err = d.partition_set(&[0.01; 5]).unwrap_err();
        assert!(err.contains("DDR banks"), "{err}");
    }

    #[test]
    fn partition_matches_single_entry_partition_set() {
        let d = Device::vu9p();
        for share in [0.05, 0.25, 0.375, 0.5, 0.9, 1.0] {
            let single = d.partition(share);
            let via_set = d.partition_set(&[share]).expect("feasible")[0].clone();
            assert_eq!(single, via_set, "share {share}");
        }
    }

    #[test]
    fn partition_set_rejects_bad_shares() {
        let d = Device::vu9p();
        assert!(d.partition_set(&[0.0, 0.5]).is_err());
        assert!(d.partition_set(&[0.7, 0.7]).is_err());
        assert!(d.partition_set(&[f64::NAN]).is_err());
        assert!(d
            .partition_set(&[])
            .expect("empty is trivially fine")
            .is_empty());
    }

    #[test]
    fn block_capacities() {
        assert_eq!(BRAM_BLOCK_BYTES, 4608);
        assert_eq!(URAM_BLOCK_BYTES, 36 * 1024);
    }
}
