//! FPGA device resources and the off-chip memory system.

use serde::{Deserialize, Serialize};

/// A 36-Kb BRAM block's capacity in bytes.
pub const BRAM_BLOCK_BYTES: u64 = 36 * 1024 / 8;
/// A 288-Kb URAM block's capacity in bytes.
pub const URAM_BLOCK_BYTES: u64 = 288 * 1024 / 8;

/// The DDR memory system attached to the FPGA.
///
/// The paper's setup: four DDR4 banks of 19.2 GB/s theoretical bandwidth,
/// with the three tensor interfaces (input features, weights, output
/// features) each assigned one third of the aggregate
/// (`19.2 × 4 / 3 = 25.6 GB/s`, §2.2).
///
/// `access_efficiency` models the fraction of theoretical bandwidth that
/// tiled tensor traffic actually sustains. Tile-by-tile accesses issue
/// short, strided bursts that pay DRAM row-activation and bus-turnaround
/// penalties on every tile row; published measurements for this access
/// pattern on DDR4 land in the 15–35 % range, and the paper's own
/// motivation (layers "needing 70 GB/s" against a 19.2 GB/s bank) only
/// arises under such derating. The default, 0.21, is calibrated so that
/// the Table 1 reproduction lands at the paper's 1.36× average speedup
/// and a comparable memory-bound layer population; see DESIGN.md §2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdrConfig {
    /// Number of DDR banks.
    pub banks: usize,
    /// Theoretical bandwidth per bank, bytes per second.
    pub bank_bandwidth: f64,
    /// Fraction of aggregate bandwidth assigned to each of the three
    /// tensor interfaces.
    pub interface_share: f64,
    /// Sustained fraction of theoretical bandwidth for tiled tensor
    /// traffic.
    pub access_efficiency: f64,
}

impl DdrConfig {
    /// The paper's four-bank DDR4 configuration.
    #[must_use]
    pub fn ddr4_x4() -> Self {
        Self {
            banks: 4,
            bank_bandwidth: 19.2e9,
            interface_share: 1.0 / 3.0,
            access_efficiency: 0.21,
        }
    }

    /// Theoretical aggregate bandwidth across all banks, bytes/s.
    #[must_use]
    pub fn aggregate_bandwidth(&self) -> f64 {
        self.banks as f64 * self.bank_bandwidth
    }

    /// Theoretical bandwidth assigned to one tensor interface, bytes/s.
    #[must_use]
    pub fn interface_bandwidth(&self) -> f64 {
        self.aggregate_bandwidth() * self.interface_share
    }

    /// Sustained (derated) bandwidth of one tensor interface, bytes/s —
    /// the number every transfer-latency estimate divides by.
    #[must_use]
    pub fn effective_interface_bandwidth(&self) -> f64 {
        self.interface_bandwidth() * self.access_efficiency
    }

    /// Access efficiency as a function of the contiguous chunk size of
    /// a transfer: each chunk pays a fixed row-activation/turnaround
    /// cost equivalent to [`DDR_CHUNK_OVERHEAD_BYTES`] of bus time, so
    /// `eff = chunk / (chunk + overhead)`.
    ///
    /// This is the *granular* alternative to the flat
    /// `access_efficiency` knob: a 112-byte feature row (56-wide fmap at
    /// 16-bit) sustains ≈ 0.21 of peak — the calibrated uniform value —
    /// while multi-KB weight streams approach 0.9.
    #[must_use]
    pub fn chunk_efficiency(&self, chunk_bytes: u64) -> f64 {
        let c = chunk_bytes.max(1) as f64;
        c / (c + DDR_CHUNK_OVERHEAD_BYTES)
    }

    /// Sustained bandwidth of one interface for transfers whose
    /// contiguous chunks are `chunk_bytes` long.
    #[must_use]
    pub fn granular_interface_bandwidth(&self, chunk_bytes: u64) -> f64 {
        self.interface_bandwidth() * self.chunk_efficiency(chunk_bytes)
    }
}

/// Fixed per-chunk cost of a DRAM access in bus-byte equivalents
/// (row activation + precharge + read latency + turnaround at DDR4
/// timing, ≈ 17 ns on a 25.6 GB/s stream).
pub const DDR_CHUNK_OVERHEAD_BYTES: f64 = 430.0;

/// An FPGA device: compute and memory resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Device name, e.g. `"xcvu9p"`.
    pub name: String,
    /// Total DSP48 slices.
    pub dsp_slices: usize,
    /// Total 36-Kb BRAM blocks.
    pub bram_blocks: usize,
    /// Total 288-Kb URAM blocks.
    pub uram_blocks: usize,
    /// Total CLB LUTs (used only for the utilisation columns of the
    /// report tables; the model never gates on logic).
    pub clb_luts: usize,
    /// The attached DDR system.
    pub ddr: DdrConfig,
}

impl Device {
    /// The Xilinx Virtex UltraScale+ VU9P used throughout the paper:
    /// 6840 DSPs, 2160 BRAM36, 960 URAM288, ~1.18 M LUTs.
    #[must_use]
    pub fn vu9p() -> Self {
        Self {
            name: "xcvu9p".to_string(),
            dsp_slices: 6840,
            bram_blocks: 2160,
            uram_blocks: 960,
            clb_luts: 1_182_000,
            ddr: DdrConfig::ddr4_x4(),
        }
    }

    /// The Xilinx VU13P: the next device up (12288 DSPs, 2688 BRAM36,
    /// 1280 URAM288) with the same four-bank DDR4 — more compute and
    /// SRAM against unchanged bandwidth, so *more* layers go memory
    /// bound and LCMM has more to recover.
    #[must_use]
    pub fn vu13p() -> Self {
        Self {
            name: "xcvu13p".to_string(),
            dsp_slices: 12_288,
            bram_blocks: 2688,
            uram_blocks: 1280,
            clb_luts: 1_728_000,
            ddr: DdrConfig::ddr4_x4(),
        }
    }

    /// The Xilinx ZU9EG (Zynq UltraScale+ MPSoC, embedded class):
    /// 2520 DSPs, 912 BRAM36, **no URAM**, a single DDR4 channel. The
    /// stress case for LCMM — barely 4 MiB of SRAM to allocate.
    #[must_use]
    pub fn zu9eg() -> Self {
        Self {
            name: "xczu9eg".to_string(),
            dsp_slices: 2520,
            bram_blocks: 912,
            uram_blocks: 0,
            clb_luts: 274_000,
            ddr: DdrConfig {
                banks: 1,
                bank_bandwidth: 19.2e9,
                interface_share: 1.0 / 3.0,
                access_efficiency: 0.21,
            },
        }
    }

    /// Resolves a device by its short CLI/wire name.
    ///
    /// Recognised names: `vu9p`/`xcvu9p`, `vu13p`/`xcvu13p`,
    /// `zu9eg`/`xczu9eg` (case-insensitive).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "vu9p" | "xcvu9p" => Some(Self::vu9p()),
            "vu13p" | "xcvu13p" => Some(Self::vu13p()),
            "zu9eg" | "xczu9eg" => Some(Self::zu9eg()),
            _ => None,
        }
    }

    /// Total BRAM capacity in bytes.
    #[must_use]
    pub fn bram_bytes(&self) -> u64 {
        self.bram_blocks as u64 * BRAM_BLOCK_BYTES
    }

    /// Total URAM capacity in bytes.
    #[must_use]
    pub fn uram_bytes(&self) -> u64 {
        self.uram_blocks as u64 * URAM_BLOCK_BYTES
    }

    /// Total on-chip SRAM (BRAM + URAM) in bytes.
    ///
    /// For the VU9P this is ≈ 43 MB — the "device limit (40 MB)" marked
    /// in the paper's Fig. 2(b).
    #[must_use]
    pub fn sram_bytes(&self) -> u64 {
        self.bram_bytes() + self.uram_bytes()
    }

    /// Peak MAC throughput in operations per second at `freq_hz` for a
    /// design using `dsps` slices at `dsps_per_mac` cost
    /// (2 ops — multiply and add — per MAC per cycle).
    #[must_use]
    pub fn peak_ops(&self, dsps: usize, dsps_per_mac: usize, freq_hz: f64) -> f64 {
        (dsps / dsps_per_mac) as f64 * 2.0 * freq_hz
    }

    /// A tenant's view of this device in a multi-tenant co-plan: DSP
    /// slices and DDR banks are scaled by `share` (rounded down, but a
    /// tenant always keeps at least one bank so the transfer model stays
    /// finite); name and SRAM blocks are unchanged, because SRAM is
    /// partitioned at byte granularity by the joint knapsack, not by the
    /// device view.
    ///
    /// `share == 1.0` returns the device unchanged (bit-identical), so
    /// the single-tenant case degenerates exactly to the whole device.
    ///
    /// # Panics
    ///
    /// Panics when `share` is not in `(0.0, 1.0]`.
    #[must_use]
    pub fn partition(&self, share: f64) -> Self {
        assert!(
            share > 0.0 && share <= 1.0,
            "partition share {share} out of (0, 1]"
        );
        if share == 1.0 {
            return self.clone();
        }
        let mut part = self.clone();
        part.dsp_slices = ((self.dsp_slices as f64 * share) as usize).max(1);
        part.ddr.banks = ((self.ddr.banks as f64 * share) as usize).max(1);
        part
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::vu9p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vu9p_sram_near_43_mb() {
        let d = Device::vu9p();
        let mb = d.sram_bytes() as f64 / (1024.0 * 1024.0);
        assert!((42.0..45.0).contains(&mb), "got {mb} MiB");
    }

    #[test]
    fn interface_bandwidth_is_25_6_gbps() {
        let ddr = DdrConfig::ddr4_x4();
        assert!((ddr.interface_bandwidth() - 25.6e9).abs() < 1e6);
        assert!(ddr.effective_interface_bandwidth() < ddr.interface_bandwidth());
    }

    #[test]
    fn peak_ops_matches_paper_2_7_tops() {
        // 6840 DSPs x 2 ops x 200 MHz = 2.736 Tops, the paper's "up to
        // 2.7 Tops under 200 MHz".
        let d = Device::vu9p();
        let tops = d.peak_ops(d.dsp_slices, 1, 200e6) / 1e12;
        assert!((2.6..2.8).contains(&tops), "got {tops} Tops");
    }

    #[test]
    fn float_peak_is_one_fifth() {
        let d = Device::vu9p();
        let fx = d.peak_ops(5000, 1, 200e6);
        let fp = d.peak_ops(5000, 5, 200e6);
        assert!((fx / fp - 5.0).abs() < 1e-9);
    }

    #[test]
    fn device_family_ordering() {
        let zu = Device::zu9eg();
        let vu9 = Device::vu9p();
        let vu13 = Device::vu13p();
        assert!(zu.dsp_slices < vu9.dsp_slices && vu9.dsp_slices < vu13.dsp_slices);
        assert!(zu.sram_bytes() < vu9.sram_bytes() && vu9.sram_bytes() < vu13.sram_bytes());
        assert_eq!(zu.uram_blocks, 0);
        // Embedded part has a quarter of the DDR bandwidth.
        assert!(zu.ddr.aggregate_bandwidth() < vu9.ddr.aggregate_bandwidth() / 3.9);
    }

    #[test]
    fn partition_full_share_is_identity() {
        let d = Device::vu9p();
        assert_eq!(d.partition(1.0), d);
    }

    #[test]
    fn partition_scales_dsp_and_banks() {
        let d = Device::vu9p();
        let half = d.partition(0.5);
        assert_eq!(half.dsp_slices, 3420);
        assert_eq!(half.ddr.banks, 2);
        // SRAM is split by the joint knapsack, not the device view.
        assert_eq!(half.sram_bytes(), d.sram_bytes());
        assert_eq!(half.name, d.name);
        // Tiny shares keep at least one bank.
        let sliver = d.partition(0.05);
        assert_eq!(sliver.ddr.banks, 1);
        assert!(sliver.dsp_slices >= 1);
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn partition_rejects_zero_share() {
        let _ = Device::vu9p().partition(0.0);
    }

    #[test]
    fn block_capacities() {
        assert_eq!(BRAM_BLOCK_BYTES, 4608);
        assert_eq!(URAM_BLOCK_BYTES, 36 * 1024);
    }
}
