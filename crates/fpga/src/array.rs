//! The systolic convolution array model (Wei et al., DAC'17 — ref. \[18\]).

use crate::precision::Precision;
use lcmm_graph::{FcParams, Graph, Node, OpKind};
use serde::{Deserialize, Serialize};

/// A three-dimensionally unrolled systolic array.
///
/// Following the architecture template of \[18\], the PE grid unrolls:
/// * `rows` over output channels (`M`),
/// * `cols` over output-row positions (`W_o`),
/// * `simd` over input channels (`C`) as the per-PE vector width.
///
/// One MAC executes per PE per cycle; a layer's cycle count is the
/// product of the ceiling-quantised loop trip counts, which captures the
/// efficiency loss when a layer's dimensions do not divide the array
/// dimensions (the paper's "reduction of actual operations" effect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystolicArray {
    /// PEs along the output-channel dimension.
    pub rows: usize,
    /// PEs along the output-width dimension.
    pub cols: usize,
    /// Vector lanes per PE along the input-channel dimension.
    pub simd: usize,
}

/// Fixed per-layer overhead in cycles: pipeline fill/drain plus control
/// handshaking between layers.
const LAYER_OVERHEAD_CYCLES: u64 = 2_000;

impl SystolicArray {
    /// Creates an array; all dimensions must be nonzero.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(rows: usize, cols: usize, simd: usize) -> Self {
        assert!(
            rows > 0 && cols > 0 && simd > 0,
            "array dims must be nonzero"
        );
        Self { rows, cols, simd }
    }

    /// MACs retired per cycle at full occupancy.
    #[must_use]
    pub fn macs_per_cycle(&self) -> u64 {
        (self.rows * self.cols * self.simd) as u64
    }

    /// DSP slices consumed at the given precision.
    #[must_use]
    pub fn dsp_cost(&self, precision: Precision) -> usize {
        precision.dsp_cost(self.rows * self.cols * self.simd)
    }

    /// Cycle count for a convolution of `out_channels × out_h × out_w`
    /// outputs over `in_channels` inputs with a `kernel_h × kernel_w`
    /// filter.
    #[must_use]
    pub fn conv_cycles(
        &self,
        out_channels: usize,
        out_h: usize,
        out_w: usize,
        in_channels: usize,
        kernel_h: usize,
        kernel_w: usize,
    ) -> u64 {
        let n_m = out_channels.div_ceil(self.rows) as u64;
        let n_w = out_w.div_ceil(self.cols) as u64;
        let n_c = in_channels.div_ceil(self.simd) as u64;
        n_m * n_w * out_h as u64 * n_c * (kernel_h * kernel_w) as u64 + LAYER_OVERHEAD_CYCLES
    }

    /// Cycle count for one node of `graph`, or 0 for nodes that do not
    /// run on the array (pool, concat, element-wise layers are executed
    /// by dedicated lightweight units modelled in the latency pass).
    #[must_use]
    pub fn node_cycles(&self, graph: &Graph, node: &Node) -> u64 {
        match node.op() {
            OpKind::Conv(p) => {
                let input = graph.node(node.inputs()[0]).output_shape();
                let out = node.output_shape();
                self.conv_cycles(
                    out.channels,
                    out.height,
                    out.width,
                    input.channels,
                    p.kernel_h,
                    p.kernel_w,
                )
            }
            OpKind::Fc(FcParams { out_features }) => {
                let input = graph.node(node.inputs()[0]).output_shape();
                self.conv_cycles(*out_features, 1, 1, input.elems() as usize, 1, 1)
            }
            _ => 0,
        }
    }

    /// Occupancy of the array for a conv layer: useful MACs divided by
    /// issued MAC slots. 1.0 means the layer divides the array exactly.
    #[must_use]
    pub fn efficiency(
        &self,
        out_channels: usize,
        out_h: usize,
        out_w: usize,
        in_channels: usize,
        kernel_h: usize,
        kernel_w: usize,
    ) -> f64 {
        let useful = out_channels as u64
            * (out_h * out_w) as u64
            * in_channels as u64
            * (kernel_h * kernel_w) as u64;
        let cycles = self.conv_cycles(out_channels, out_h, out_w, in_channels, kernel_h, kernel_w)
            - LAYER_OVERHEAD_CYCLES;
        useful as f64 / (cycles * self.macs_per_cycle()) as f64
    }

    /// Exhaustively explores array shapes and returns the one minimising
    /// total compute cycles for `graph`, subject to
    /// `dsp_cost(precision) <= dsp_budget`.
    ///
    /// The candidate set covers powers of two for `rows`/`simd` and the
    /// divisor-friendly column counts that match common feature-map
    /// widths, mirroring the DSE of \[18\].
    ///
    /// # Panics
    ///
    /// Panics when no candidate array fits `dsp_budget`; use
    /// [`SystolicArray::try_explore`] for a fallible variant.
    #[must_use]
    pub fn explore(graph: &Graph, precision: Precision, dsp_budget: usize) -> SystolicArray {
        Self::try_explore(graph, precision, dsp_budget)
            .expect("candidate set always contains a feasible array")
    }

    /// Like [`SystolicArray::explore`], but returns `None` when not even
    /// the smallest candidate array fits `dsp_budget` — the infeasible-
    /// budget case a planning service must surface as an error instead
    /// of a panic.
    #[must_use]
    pub fn try_explore(
        graph: &Graph,
        precision: Precision,
        dsp_budget: usize,
    ) -> Option<SystolicArray> {
        const ROWS: [usize; 5] = [8, 16, 32, 64, 96];
        const COLS: [usize; 7] = [7, 8, 14, 16, 20, 22, 28];
        const SIMD: [usize; 4] = [2, 4, 8, 16];
        let mut best: Option<(u64, SystolicArray)> = None;
        for &rows in &ROWS {
            for &cols in &COLS {
                for &simd in &SIMD {
                    let arr = SystolicArray::new(rows, cols, simd);
                    if arr.dsp_cost(precision) > dsp_budget {
                        continue;
                    }
                    let total: u64 = graph.iter().map(|n| arr.node_cycles(graph, n)).sum();
                    let better = match &best {
                        None => true,
                        Some((cycles, prev)) => {
                            total < *cycles
                                || (total == *cycles
                                    && arr.dsp_cost(precision) < prev.dsp_cost(precision))
                        }
                    };
                    if better {
                        best = Some((total, arr));
                    }
                }
            }
        }
        best.map(|(_, arr)| arr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_graph::zoo;

    #[test]
    fn macs_and_dsp_cost() {
        let a = SystolicArray::new(32, 22, 8);
        assert_eq!(a.macs_per_cycle(), 5632);
        assert_eq!(a.dsp_cost(Precision::Fix16), 5632);
        assert_eq!(a.dsp_cost(Precision::Fix8), (5632 * 2usize).div_ceil(3));
        assert_eq!(a.dsp_cost(Precision::Float32), 4 * 5632);
    }

    #[test]
    fn conv_cycles_exact_fit() {
        let a = SystolicArray::new(32, 16, 8);
        // 32 maps, 16x16 out, 8 in-channels, 1x1 kernel: one pass per
        // output row.
        let c = a.conv_cycles(32, 16, 16, 8, 1, 1) - LAYER_OVERHEAD_CYCLES;
        assert_eq!(c, 16);
        let useful = 32u64 * 256 * 8;
        assert_eq!(c * a.macs_per_cycle(), useful); // 100% efficiency
        assert!((a.efficiency(32, 16, 16, 8, 1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantization_penalty() {
        let a = SystolicArray::new(32, 22, 8);
        // 17-wide output on 22 columns wastes 5/22 of the array.
        let eff = a.efficiency(32, 17, 17, 8, 1, 1);
        assert!((eff - 17.0 / 22.0).abs() < 1e-12, "got {eff}");
    }

    #[test]
    fn fc_uses_rows_and_simd_only() {
        let a = SystolicArray::new(32, 22, 8);
        let c = a.conv_cycles(1000, 1, 1, 2048, 1, 1) - LAYER_OVERHEAD_CYCLES;
        assert_eq!(c, 1000u64.div_ceil(32) * 2048u64.div_ceil(8));
    }

    #[test]
    fn explore_respects_budget() {
        let g = zoo::alexnet();
        for p in Precision::ALL {
            let a = SystolicArray::explore(&g, p, 5800);
            assert!(a.dsp_cost(p) <= 5800, "{a:?} exceeds budget at {p}");
        }
    }

    #[test]
    fn explore_fp32_array_is_smaller() {
        let g = zoo::googlenet();
        let fx = SystolicArray::explore(&g, Precision::Fix16, 5800);
        let fp = SystolicArray::explore(&g, Precision::Float32, 5800);
        assert!(fp.macs_per_cycle() < fx.macs_per_cycle());
    }

    #[test]
    fn node_cycles_zero_for_non_compute() {
        let g = zoo::googlenet();
        let a = SystolicArray::new(32, 22, 8);
        let pool = g.node_by_name("pool1/3x3_s2").unwrap();
        assert_eq!(a.node_cycles(&g, pool), 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dim_panics() {
        let _ = SystolicArray::new(0, 1, 1);
    }
}
