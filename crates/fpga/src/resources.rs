//! Resource accounting: packing buffers into BRAM/URAM, utilisation
//! reports for the paper's tables.
//!
//! These numbers are *modelled*, not synthesised: DSPs follow directly
//! from the array shape, memory blocks from rounding buffer sizes to
//! block capacities, and CLBs from a per-MAC logic estimate. They exist
//! so the reproduction can print the same table columns the paper does.

use crate::design::AccelDesign;
use crate::device::{Device, BRAM_BLOCK_BYTES, URAM_BLOCK_BYTES};
use crate::precision::Precision;
use serde::{Deserialize, Serialize};

/// Buffers at least this large are placed in URAM; smaller ones in BRAM.
/// URAM blocks are 8× the size of BRAM blocks, so small buffers would
/// waste most of a URAM block.
pub const URAM_THRESHOLD_BYTES: u64 = 64 * 1024;

/// Result of packing a set of buffers into memory blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryPacking {
    /// 36-Kb BRAM blocks consumed.
    pub bram_blocks: usize,
    /// 288-Kb URAM blocks consumed.
    pub uram_blocks: usize,
}

impl MemoryPacking {
    /// Packs each buffer independently into whole blocks.
    #[must_use]
    pub fn pack(buffer_bytes: &[u64]) -> Self {
        let mut p = MemoryPacking::default();
        for &b in buffer_bytes {
            if b == 0 {
                continue;
            }
            if b >= URAM_THRESHOLD_BYTES {
                p.uram_blocks += b.div_ceil(URAM_BLOCK_BYTES) as usize;
            } else {
                p.bram_blocks += b.div_ceil(BRAM_BLOCK_BYTES) as usize;
            }
        }
        p
    }

    /// Rebalances a packing that over-commits one block type on
    /// `device`: overflowing URAM spills (byte-equivalently) into BRAM
    /// and vice versa, exactly as a real floorplan would re-home
    /// buffers. Utilisation can then only exceed 100 % if the *total*
    /// SRAM genuinely does not fit.
    #[must_use]
    pub fn rebalanced(mut self, device: &Device) -> Self {
        let ratio = (URAM_BLOCK_BYTES / BRAM_BLOCK_BYTES) as usize;
        if self.uram_blocks > device.uram_blocks {
            let overflow = self.uram_blocks - device.uram_blocks;
            self.uram_blocks = device.uram_blocks;
            self.bram_blocks += overflow * ratio;
        }
        if self.bram_blocks > device.bram_blocks {
            let overflow_blocks = self.bram_blocks - device.bram_blocks;
            let as_uram = overflow_blocks.div_ceil(ratio);
            if self.uram_blocks + as_uram <= device.uram_blocks {
                self.bram_blocks = device.bram_blocks;
                self.uram_blocks += as_uram;
            }
        }
        self
    }

    /// Adds another packing's blocks to this one.
    #[must_use]
    pub fn plus(self, other: MemoryPacking) -> Self {
        Self {
            bram_blocks: self.bram_blocks + other.bram_blocks,
            uram_blocks: self.uram_blocks + other.uram_blocks,
        }
    }

    /// Total bytes of capacity the packed blocks provide.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.bram_blocks as u64 * BRAM_BLOCK_BYTES + self.uram_blocks as u64 * URAM_BLOCK_BYTES
    }

    /// Whether the packing fits `device`.
    #[must_use]
    pub fn fits(&self, device: &Device) -> bool {
        self.bram_blocks <= device.bram_blocks && self.uram_blocks <= device.uram_blocks
    }
}

/// Utilisation report for one design (a Table 1 / Table 3 row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// DSP slices used.
    pub dsp_used: usize,
    /// DSP utilisation in [0, 1].
    pub dsp_util: f64,
    /// BRAM blocks used.
    pub bram_blocks: usize,
    /// BRAM utilisation in [0, 1].
    pub bram_util: f64,
    /// URAM blocks used.
    pub uram_blocks: usize,
    /// URAM utilisation in [0, 1].
    pub uram_util: f64,
    /// Estimated LUTs used.
    pub luts: usize,
    /// CLB (LUT) utilisation in [0, 1].
    pub clb_util: f64,
}

impl ResourceReport {
    /// Combined BRAM+URAM utilisation, weighted by capacity — the single
    /// "SRAM %" column of Table 1.
    #[must_use]
    pub fn sram_util(&self, device: &Device) -> f64 {
        let used =
            self.bram_blocks as u64 * BRAM_BLOCK_BYTES + self.uram_blocks as u64 * URAM_BLOCK_BYTES;
        used as f64 / device.sram_bytes() as f64
    }
}

/// Estimated LUTs per MAC unit for datapath + control.
fn luts_per_mac(precision: Precision) -> usize {
    match precision {
        Precision::Fix8 => 55,
        Precision::Fix16 => 80,
        // fp32 MACs keep significant alignment/normalisation logic in
        // fabric even with 5 DSPs.
        Precision::Float32 => 600,
    }
}

/// Base LUTs for DDR controllers, AXI interconnect and global control.
const BASE_LUTS: usize = 80_000;
/// Control/addressing LUT overhead per allocated tensor buffer.
const LUTS_PER_BUFFER: usize = 900;

/// Builds the utilisation report for a design whose on-chip memory holds
/// the (double-buffered) tile buffers plus `tensor_buffers` (LCMM's
/// allocated buffers; empty for UMM).
#[must_use]
pub fn report(design: &AccelDesign, tensor_buffers: &[u64]) -> ResourceReport {
    let device = &design.device;
    // Tile buffers are double buffered: two physical copies of each.
    let tb = design.tile_budget;
    let tile_sizes = [
        tb.ib_bytes,
        tb.ib_bytes,
        tb.wb_bytes,
        tb.wb_bytes,
        tb.ob_bytes,
        tb.ob_bytes,
    ];
    // PE-local register files / line buffers land in BRAM: modelled as a
    // quarter block per PE.
    let pe_local_bram = (design.array.rows * design.array.cols).div_ceil(4);
    let packing = MemoryPacking::pack(&tile_sizes)
        .plus(MemoryPacking::pack(tensor_buffers))
        .plus(MemoryPacking {
            bram_blocks: pe_local_bram,
            uram_blocks: 0,
        })
        .rebalanced(device);

    let macs = design.array.macs_per_cycle() as usize;
    let luts =
        BASE_LUTS + macs * luts_per_mac(design.precision) + tensor_buffers.len() * LUTS_PER_BUFFER;

    ResourceReport {
        dsp_used: design.dsp_used(),
        dsp_util: design.dsp_utilization(),
        bram_blocks: packing.bram_blocks,
        bram_util: packing.bram_blocks as f64 / device.bram_blocks as f64,
        uram_blocks: packing.uram_blocks,
        uram_util: packing.uram_blocks as f64 / device.uram_blocks as f64,
        luts,
        clb_util: luts as f64 / device.clb_luts as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccelDesign;
    use lcmm_graph::zoo;

    #[test]
    fn packing_rounds_up_per_buffer() {
        let p = MemoryPacking::pack(&[URAM_BLOCK_BYTES + URAM_THRESHOLD_BYTES, 1, 0]);
        assert_eq!(p.uram_blocks, 3);
        assert_eq!(p.bram_blocks, 1);
        assert!(p.capacity_bytes() > URAM_BLOCK_BYTES + URAM_THRESHOLD_BYTES);
    }

    #[test]
    fn threshold_routes_small_buffers_to_bram() {
        let p = MemoryPacking::pack(&[URAM_THRESHOLD_BYTES - 1]);
        assert_eq!(p.uram_blocks, 0);
        assert!(p.bram_blocks > 0);
    }

    #[test]
    fn plus_sums_fields() {
        let a = MemoryPacking {
            bram_blocks: 3,
            uram_blocks: 5,
        };
        let b = MemoryPacking {
            bram_blocks: 1,
            uram_blocks: 2,
        };
        assert_eq!(
            a.plus(b),
            MemoryPacking {
                bram_blocks: 4,
                uram_blocks: 7
            }
        );
    }

    #[test]
    fn umm_report_matches_paper_band() {
        // UMM designs in the paper sit at ~8-12 BRAM%, 10-25 URAM%.
        let g = zoo::resnet152();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix8);
        let r = report(&d, &[]);
        assert!(r.uram_util < 0.35, "uram {}", r.uram_util);
        assert!(r.bram_util < 0.35, "bram {}", r.bram_util);
        assert!(r.dsp_util <= 0.84);
        assert!(r.clb_util < 1.0);
    }

    #[test]
    fn tensor_buffers_raise_uram_util() {
        let g = zoo::resnet152();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix8);
        let base = report(&d, &[]);
        let with = report(&d, &[8 << 20, 4 << 20, 2 << 20]);
        assert!(with.uram_util > base.uram_util);
        assert!(with.luts > base.luts);
    }

    #[test]
    fn rebalance_spills_uram_overflow_to_bram() {
        let device = Device::vu9p();
        let p = MemoryPacking {
            bram_blocks: 0,
            uram_blocks: device.uram_blocks + 10,
        }
        .rebalanced(&device);
        assert_eq!(p.uram_blocks, device.uram_blocks);
        assert_eq!(p.bram_blocks, 10 * 8);
        assert!(p.fits(&device));
    }

    #[test]
    fn rebalance_spills_bram_overflow_to_uram() {
        let device = Device::vu9p();
        let p = MemoryPacking {
            bram_blocks: device.bram_blocks + 16,
            uram_blocks: 0,
        }
        .rebalanced(&device);
        assert_eq!(p.bram_blocks, device.bram_blocks);
        assert_eq!(p.uram_blocks, 2);
    }

    #[test]
    fn fits_checks_both_kinds() {
        let device = Device::vu9p();
        assert!(MemoryPacking {
            bram_blocks: 2160,
            uram_blocks: 960
        }
        .fits(&device));
        assert!(!MemoryPacking {
            bram_blocks: 2161,
            uram_blocks: 0
        }
        .fits(&device));
    }
}
