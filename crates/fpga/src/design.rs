//! A complete accelerator design point: array + clock + tile budget.

use crate::array::SystolicArray;
use crate::device::Device;
use crate::latency::{post_engine_cycles, resolved_sources, GraphProfile, OpLatency};
use crate::precision::Precision;
use crate::tiling::{choose_tiling, TileBudget, TileChoice};
use lcmm_graph::{ConvParams, FeatureShape, Graph, Node, OpKind};
use serde::{Deserialize, Serialize};

/// Fraction of the device's DSPs the DSE may spend on the array. Matches
/// the paper's designs, which land at 75–83 % DSP utilisation.
const DSP_BUDGET_FRACTION: f64 = 0.84;

/// Fraction of total SRAM usable overall (routing/ECC headroom); the
/// paper's LCMM designs top out at 81–89 % SRAM utilisation.
const SRAM_CAP_FRACTION: f64 = 0.82;

/// One accelerator design point: the systolic array, its clock, the tile
/// buffer budget, and the device it lives on.
///
/// Baseline clocks mirror Table 1 of the paper (fixed-point designs close
/// timing at 190 MHz, float at 170 MHz; LCMM variants derate slightly —
/// see [`AccelDesign::with_frequency`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelDesign {
    /// Target device.
    pub device: Device,
    /// Datapath precision.
    pub precision: Precision,
    /// The chosen systolic array.
    pub array: SystolicArray,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Tile buffer budget.
    pub tile_budget: TileBudget,
    /// Images processed per invocation. Batching multiplies compute and
    /// feature traffic but amortises weight traffic — the classic
    /// throughput-vs-latency lever (the paper works at batch 1).
    pub batch: usize,
    /// Derive per-tensor DRAM efficiency from access granularity
    /// (`DdrConfig::chunk_efficiency`) instead of the flat
    /// `access_efficiency` knob. Off by default: the uniform knob is
    /// what the Table 1 calibration fixes; granular mode is the
    /// analysis that justifies its magnitude.
    pub granular_ddr: bool,
}

impl AccelDesign {
    /// Runs the design-space exploration of \[18\]: picks the array shape
    /// minimising total compute cycles for `graph` within the DSP
    /// budget, at the default clock for `precision`, with the UMM tile
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics when no array fits the device's DSP budget; a planning
    /// service should use [`AccelDesign::try_explore`] instead.
    #[must_use]
    pub fn explore(graph: &Graph, device: &Device, precision: Precision) -> Self {
        Self::try_explore(graph, device, precision)
            .expect("device DSP budget admits no systolic array")
    }

    /// Fallible variant of [`AccelDesign::explore`]: returns an error
    /// naming the budget when not even the smallest candidate array fits
    /// the device.
    ///
    /// # Errors
    ///
    /// A human-readable description of the infeasible DSP budget.
    pub fn try_explore(
        graph: &Graph,
        device: &Device,
        precision: Precision,
    ) -> Result<Self, String> {
        Self::try_explore_with_dsp_fraction(graph, device, precision, DSP_BUDGET_FRACTION)
    }

    /// Like [`AccelDesign::explore`] but with an explicit DSP budget
    /// fraction — used to model comparison designs that deliberately
    /// spend fewer DSPs (e.g. TGPA's 60 % in the paper's Table 3).
    ///
    /// # Panics
    ///
    /// Panics when no array fits the scaled DSP budget.
    #[must_use]
    pub fn explore_with_dsp_fraction(
        graph: &Graph,
        device: &Device,
        precision: Precision,
        dsp_fraction: f64,
    ) -> Self {
        Self::try_explore_with_dsp_fraction(graph, device, precision, dsp_fraction)
            .expect("DSP budget admits no systolic array")
    }

    /// Fallible variant of [`AccelDesign::explore_with_dsp_fraction`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the infeasible DSP budget.
    pub fn try_explore_with_dsp_fraction(
        graph: &Graph,
        device: &Device,
        precision: Precision,
        dsp_fraction: f64,
    ) -> Result<Self, String> {
        let budget = (device.dsp_slices as f64 * dsp_fraction) as usize;
        let array = SystolicArray::try_explore(graph, precision, budget).ok_or_else(|| {
            format!(
                "no systolic array fits {budget} DSP slices on {} at {precision}",
                device.name
            )
        })?;
        Ok(Self {
            device: device.clone(),
            precision,
            array,
            freq_hz: default_frequency(precision),
            tile_budget: TileBudget::default_umm(),
            batch: 1,
            granular_ddr: false,
        })
    }

    /// Returns a copy clocked at `freq_hz`.
    #[must_use]
    pub fn with_frequency(mut self, freq_hz: f64) -> Self {
        self.freq_hz = freq_hz;
        self
    }

    /// Returns a copy with a different tile budget.
    #[must_use]
    pub fn with_tile_budget(mut self, tile_budget: TileBudget) -> Self {
        self.tile_budget = tile_budget;
        self
    }

    /// Returns a copy using granularity-derived DRAM efficiency.
    #[must_use]
    pub fn with_granular_ddr(mut self) -> Self {
        self.granular_ddr = true;
        self
    }

    /// Returns a copy processing `batch` images per invocation.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be nonzero");
        self.batch = batch;
        self
    }

    /// DSP slices used by the array.
    #[must_use]
    pub fn dsp_used(&self) -> usize {
        self.array.dsp_cost(self.precision)
    }

    /// DSP utilisation in [0, 1].
    #[must_use]
    pub fn dsp_utilization(&self) -> f64 {
        self.dsp_used() as f64 / self.device.dsp_slices as f64
    }

    /// Peak throughput of this design in ops/s (2 ops per MAC).
    #[must_use]
    pub fn peak_ops(&self) -> f64 {
        self.array.macs_per_cycle() as f64 * 2.0 * self.freq_hz
    }

    /// SRAM bytes available for LCMM tensor buffers after the (double
    /// buffered) tile buffers and the global cap are accounted for.
    #[must_use]
    pub fn tensor_sram_budget(&self) -> u64 {
        let cap = (self.device.sram_bytes() as f64 * SRAM_CAP_FRACTION) as u64;
        cap.saturating_sub(self.tile_budget.total_double_buffered())
    }

    /// Builds the full operation latency table for `graph`.
    #[must_use]
    pub fn profile(&self, graph: &Graph) -> GraphProfile {
        GraphProfile::build(graph, self)
    }

    /// Sustained per-interface DRAM bandwidth, bytes/s.
    #[must_use]
    pub fn interface_bandwidth(&self) -> f64 {
        self.device.ddr.effective_interface_bandwidth()
    }

    /// Transfer latency of `bytes` over one tensor interface.
    #[must_use]
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.interface_bandwidth()
    }

    /// Tiling decision for a conv-like layer.
    #[must_use]
    pub fn tiling(
        &self,
        input: FeatureShape,
        output: FeatureShape,
        params: &ConvParams,
    ) -> TileChoice {
        choose_tiling(input, output, params, self.precision, &self.tile_budget)
    }

    /// The latency row (Fig. 7(c)) for one node.
    #[must_use]
    pub fn node_latency(&self, graph: &Graph, node: &Node) -> OpLatency {
        let b = self.precision.bytes();
        let bw = self.interface_bandwidth();
        let zero = OpLatency {
            id: node.id(),
            compute: 0.0,
            inputs: Vec::new(),
            weight: 0.0,
            output: 0.0,
            fill: 0.0,
        };
        match node.op() {
            OpKind::Input | OpKind::Concat => zero,
            OpKind::Conv(p) => {
                let input = graph.node(node.inputs()[0]).output_shape();
                self.matmul_latency(graph, node, input, node.output_shape(), *p)
            }
            OpKind::Fc(f) => {
                let input = graph.node(node.inputs()[0]).output_shape();
                let as_conv = ConvParams::pointwise(f.out_features);
                let flat = FeatureShape::new(input.elems() as usize, 1, 1);
                self.matmul_latency(graph, node, flat, node.output_shape(), as_conv)
            }
            OpKind::Pool(_) | OpKind::GlobalAvgPool | OpKind::EltwiseAdd => {
                let n = self.batch as f64;
                let in_elems = graph.node_input_elems(node.id());
                let compute = n * post_engine_cycles(in_elems) as f64 / self.freq_hz;
                let inputs = resolved_sources(graph, node)
                    .into_iter()
                    .map(|s| {
                        let src = graph.node(s).output_shape();
                        let chunk = (src.width * src.height) as u64 * b;
                        let sbw = self.feature_bandwidth(chunk, bw);
                        (s, n * (src.elems() * b) as f64 / sbw)
                    })
                    .collect();
                let out = node.output_shape();
                let obw = self.feature_bandwidth((out.width * out.height) as u64 * b, bw);
                let output = n * (out.elems() * b) as f64 / obw;
                OpLatency {
                    id: node.id(),
                    compute,
                    inputs,
                    weight: 0.0,
                    output,
                    fill: 0.0,
                }
            }
        }
    }

    fn matmul_latency(
        &self,
        graph: &Graph,
        node: &Node,
        input: FeatureShape,
        output: FeatureShape,
        params: ConvParams,
    ) -> OpLatency {
        let b = self.precision.bytes();
        let bw = self.interface_bandwidth();
        let tile = choose_tiling(input, output, &params, self.precision, &self.tile_budget);
        let cycles = self.array.conv_cycles(
            output.channels,
            output.height,
            output.width,
            input.channels,
            params.kernel_h,
            params.kernel_w,
        );
        let n = self.batch as f64;
        let compute = n * cycles as f64 / self.freq_hz;
        let wt_bytes = params.weight_elems(input.channels) * b;
        // Weights are loaded once per invocation and reused across the
        // whole batch; features scale with it. In granular mode weights
        // stream in pre-packed multi-KB runs.
        let wt_bw = if self.granular_ddr {
            self.device
                .ddr
                .granular_interface_bandwidth(wt_bytes.min(4096))
        } else {
            bw
        };
        let weight = wt_bytes as f64 * tile.reload_wt / wt_bw;
        // Contiguous run of a feature access: a whole channel plane when
        // the tiling keeps the full spatial extent (the common case),
        // one row when rows are split.
        let spatially_split = tile.th < output.height;
        let feature_chunk = |shape: lcmm_graph::FeatureShape| -> u64 {
            if spatially_split {
                shape.width as u64 * b
            } else {
                (shape.width * shape.height) as u64 * b
            }
        };
        let out_bw = self.feature_bandwidth(feature_chunk(output), bw);
        let output_lat = n * (output.elems() * b) as f64 * tile.reload_of / out_bw;
        let inputs: Vec<(lcmm_graph::NodeId, f64)> = resolved_sources(graph, node)
            .into_iter()
            .map(|s| {
                let src = graph.node(s).output_shape();
                let sbw = self.feature_bandwidth(feature_chunk(src), bw);
                (s, n * (src.elems() * b) as f64 * tile.reload_if / sbw)
            })
            .collect();
        // One tile's worth of the slowest input stream cannot hide
        // behind compute: with `t` outer-loop tiles, that is 1/t of the
        // stream. Output tiles drain after compute and overlap the next
        // layer, so only input-side streams contribute.
        let n_tiles = (output.channels.div_ceil(tile.tm)
            * input.channels.div_ceil(tile.tc)
            * output.height.div_ceil(tile.th)) as f64;
        let if_total: f64 = inputs.iter().map(|(_, t)| *t).sum();
        let fill = if_total.max(weight) / n_tiles.max(1.0);
        OpLatency {
            id: node.id(),
            compute,
            inputs,
            weight,
            output: output_lat,
            fill,
        }
    }
}

impl AccelDesign {
    /// Bandwidth for a feature stream whose contiguous rows are
    /// `row_bytes` long: the granular model when enabled, otherwise the
    /// uniform derated interface bandwidth.
    fn feature_bandwidth(&self, row_bytes: u64, uniform_bw: f64) -> f64 {
        if self.granular_ddr {
            self.device.ddr.granular_interface_bandwidth(row_bytes)
        } else {
            uniform_bw
        }
    }
}

fn default_frequency(precision: Precision) -> f64 {
    match precision {
        Precision::Fix8 | Precision::Fix16 => 190e6,
        Precision::Float32 => 170e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_graph::zoo;

    #[test]
    fn explore_lands_near_paper_dsp_utilization() {
        let g = zoo::resnet152();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
        let u = d.dsp_utilization();
        assert!((0.6..=0.84).contains(&u), "got {u}");
    }

    #[test]
    fn default_clocks_match_table1() {
        let g = zoo::alexnet();
        let fx = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix8);
        let fp = AccelDesign::explore(&g, &Device::vu9p(), Precision::Float32);
        assert_eq!(fx.freq_hz, 190e6);
        assert_eq!(fp.freq_hz, 170e6);
        assert_eq!(fx.with_frequency(180e6).freq_hz, 180e6);
    }

    #[test]
    fn tensor_sram_budget_below_device_sram() {
        let g = zoo::googlenet();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
        assert!(d.tensor_sram_budget() < d.device.sram_bytes());
        assert!(d.tensor_sram_budget() > 20 << 20); // still tens of MB
    }

    #[test]
    fn peak_ops_in_tops_range() {
        let g = zoo::resnet152();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
        let tops = d.peak_ops() / 1e12;
        assert!((1.0..2.6).contains(&tops), "got {tops}");
    }

    #[test]
    fn transfer_seconds_linear() {
        let g = zoo::alexnet();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix8);
        let t1 = d.transfer_seconds(1 << 20);
        let t2 = d.transfer_seconds(2 << 20);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn granular_ddr_matches_uniform_on_typical_feature_rows() {
        // The calibration argument: a mid-network feature row sustains
        // about the uniform knob's 0.21.
        let d = Device::vu9p();
        let row_56_wide_16bit = 56 * 2;
        let eff = d.ddr.chunk_efficiency(row_56_wide_16bit);
        assert!((0.15..0.30).contains(&eff), "got {eff}");
        // Pre-packed weight streams approach peak.
        assert!(d.ddr.chunk_efficiency(4096) > 0.85);
    }

    #[test]
    fn granular_mode_preserves_the_lcmm_story() {
        // Under the granularity-derived model, deep ResNet layers stay
        // weight-bound (huge weights vs tiny fmaps), so memory-bound
        // layers still exist even with efficient weight streaming.
        let g = zoo::resnet152();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16).with_granular_ddr();
        let profile = d.profile(&g);
        let frac = profile.memory_bound_fraction(&g);
        assert!(
            frac > 0.10,
            "granular mode erased all memory-bound layers: {frac}"
        );
        // And small-spatial layers transfer slower per byte than the
        // theoretical interface.
        let res5 = g.node_by_name("res5c_branch2b").unwrap();
        let row = d.node_latency(&g, res5);
        let theoretical = d.device.ddr.interface_bandwidth();
        let wt_bytes = g.node_weight_elems(res5.id()) * 2;
        assert!(row.weight > wt_bytes as f64 / theoretical);
    }

    #[test]
    fn batching_amortises_weights() {
        let g = zoo::vgg16();
        let d1 = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
        let d8 = d1.clone().with_batch(8);
        let fc6 = g.node_by_name("fc6").unwrap();
        let r1 = d1.node_latency(&g, fc6);
        let r8 = d8.node_latency(&g, fc6);
        // Weight transfer is batch-independent; compute and features
        // scale linearly.
        assert!((r8.weight - r1.weight).abs() < 1e-15);
        assert!((r8.compute / r1.compute - 8.0).abs() < 1e-9);
        assert!((r8.input_total() / r1.input_total() - 8.0).abs() < 1e-9);
        // So the weight wall shrinks relative to the work.
        assert!(r8.weight / r8.compute < r1.weight / r1.compute);
    }

    #[test]
    #[should_panic(expected = "batch must be nonzero")]
    fn zero_batch_panics() {
        let g = zoo::alexnet();
        let _ = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix8).with_batch(0);
    }

    #[test]
    fn fc_latency_is_weight_bound() {
        // Batch-1 FC layers are the canonical memory-bound case.
        let g = zoo::vgg16();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
        let fc6 = g.node_by_name("fc6").unwrap();
        let row = d.node_latency(&g, fc6);
        assert!(row.weight > row.compute, "fc6 should be weight bound");
    }
}
