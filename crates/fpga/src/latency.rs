//! The per-node operation latency table (paper Fig. 7(c)).
//!
//! For every node the model produces the compute latency `latc` and the
//! three tensor transfer latencies `lat_if`, `lat_wt`, `lat_of`. The
//! layer latency under a given residency assignment is
//! `max(latc, …off-chip transfer terms…)` (paper Eq. 1): transfers and
//! compute overlap through double buffering, so the slowest term governs.

use crate::design::AccelDesign;
use lcmm_graph::{Graph, Node, NodeId, OpKind};
use serde::{Deserialize, Serialize};

/// Which of a node's tensors a latency term refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TensorKind {
    /// Input feature map (`if`).
    InputFeature,
    /// Weights (`wt`).
    Weight,
    /// Output feature map (`of`).
    OutputFeature,
}

/// Throughput of the lightweight post-processing units (pooling,
/// element-wise add, global pooling) in elements per cycle.
const POST_ELEMS_PER_CYCLE: u64 = 64;

/// Latency breakdown of one node, in seconds.
///
/// `inputs` is decomposed per *source value*: reads are attributed to the
/// node that materialised the data, with concatenation nodes resolved
/// away (a concat is pure address aliasing on this architecture and
/// moves no data itself).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpLatency {
    /// The node this row describes.
    pub id: NodeId,
    /// Compute latency `latc` (0 for concat / input nodes).
    pub compute: f64,
    /// Input transfer latency per resolved source value:
    /// `(producing node, seconds)`.
    pub inputs: Vec<(NodeId, f64)>,
    /// Weight transfer latency `lat_wt` (0 for weight-less nodes).
    pub weight: f64,
    /// Output transfer latency `lat_of`.
    pub output: f64,
    /// Pipeline-fill time: one tile's worth of the layer's slowest
    /// input-side stream. A design whose DMA engine only starts a
    /// layer's loads when the layer begins (no cross-layer tile
    /// prefetch) exposes this serially before compute; Fig.-1-style
    /// double buffering across layer boundaries hides it. The analytic
    /// Eq.-1 model assumes it hidden (as the paper does); the simulator
    /// can charge it (`SimConfig::pipeline_fill`) to quantify what the
    /// cross-layer double buffer is worth.
    pub fill: f64,
}

impl OpLatency {
    /// Total input transfer latency `lat_if` (all sources off-chip).
    #[must_use]
    pub fn input_total(&self) -> f64 {
        self.inputs.iter().map(|(_, t)| t).sum()
    }

    /// Node latency with every tensor off-chip (the UMM case):
    /// `max(latc, lat_if, lat_wt, lat_of)`.
    #[must_use]
    pub fn off_chip_latency(&self) -> f64 {
        self.compute
            .max(self.input_total())
            .max(self.weight)
            .max(self.output)
    }

    /// Node latency with every tensor on-chip: just the compute term.
    #[must_use]
    pub fn on_chip_latency(&self) -> f64 {
        self.compute
    }

    /// The largest off-chip transfer term.
    #[must_use]
    pub fn worst_transfer(&self) -> f64 {
        self.input_total().max(self.weight).max(self.output)
    }
}

/// Compute- vs memory-boundedness of a layer (paper Fig. 2(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Boundedness {
    /// `latc` dominates all transfer terms.
    Compute,
    /// Some transfer term exceeds `latc`.
    Memory,
}

/// The full operation latency table for a graph under one design.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphProfile {
    /// One row per node, indexed by `NodeId::index()`.
    pub per_node: Vec<OpLatency>,
}

impl GraphProfile {
    /// Builds the table for `graph` under `design`.
    ///
    /// # Panics
    ///
    /// Panics if the latency model produced a non-finite or negative
    /// term (a model bug) — downstream passes sort and subtract these
    /// values, and a NaN entering the prefetch planner would silently
    /// scramble its risk ordering.
    #[must_use]
    pub fn build(graph: &Graph, design: &AccelDesign) -> Self {
        let per_node = graph
            .iter()
            .map(|node| design.node_latency(graph, node))
            .collect();
        let profile = Self { per_node };
        profile
            .validate()
            .expect("latency model produced an invalid term");
        profile
    }

    /// Checks every latency term is finite and non-negative.
    ///
    /// [`Self::build`] enforces this at construction; callers that
    /// ingest a profile from elsewhere (deserialisation, synthetic
    /// tables) should run it before handing the profile to the planner.
    pub fn validate(&self) -> Result<(), String> {
        let ok = |t: f64| t.is_finite() && t >= 0.0;
        for row in &self.per_node {
            let mut terms = vec![
                ("compute", row.compute),
                ("weight", row.weight),
                ("output", row.output),
                ("fill", row.fill),
            ];
            terms.extend(row.inputs.iter().map(|&(_, t)| ("input", t)));
            for (name, t) in terms {
                if !ok(t) {
                    return Err(format!(
                        "node {} has an invalid {name} latency: {t}",
                        row.id.index()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Latency row of one node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &OpLatency {
        &self.per_node[id.index()]
    }

    /// End-to-end latency with uniform memory management: every tensor
    /// streams through DRAM, layers execute sequentially.
    #[must_use]
    pub fn total_latency(&self) -> f64 {
        self.per_node.iter().map(OpLatency::off_chip_latency).sum()
    }

    /// Lower bound: every transfer hidden, pure compute.
    #[must_use]
    pub fn compute_floor(&self) -> f64 {
        self.per_node.iter().map(|l| l.compute).sum()
    }

    /// Boundedness of one node (only meaningful for compute layers).
    #[must_use]
    pub fn boundedness(&self, id: NodeId) -> Boundedness {
        let l = &self.per_node[id.index()];
        if l.worst_transfer() > l.compute {
            Boundedness::Memory
        } else {
            Boundedness::Compute
        }
    }

    /// Ids of memory-bound compute layers.
    #[must_use]
    pub fn memory_bound_layers(&self, graph: &Graph) -> Vec<NodeId> {
        graph
            .compute_layers()
            .filter(|n| self.boundedness(n.id()) == Boundedness::Memory)
            .map(|n| n.id())
            .collect()
    }

    /// Fraction of compute layers that are memory bound.
    #[must_use]
    pub fn memory_bound_fraction(&self, graph: &Graph) -> f64 {
        let total = graph.compute_layers().count();
        if total == 0 {
            return 0.0;
        }
        self.memory_bound_layers(graph).len() as f64 / total as f64
    }
}

/// Resolves a node's inputs through concatenation nodes to the values
/// that actually hold bytes.
///
/// Concat is address aliasing: its "output tensor" is physically the set
/// of its source tensors, so reads of a concat are reads of its sources.
#[must_use]
pub fn resolved_sources(graph: &Graph, node: &Node) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> = node.inputs().iter().rev().copied().collect();
    while let Some(id) = stack.pop() {
        let n = graph.node(id);
        if matches!(n.op(), OpKind::Concat) {
            stack.extend(n.inputs().iter().rev().copied());
        } else {
            out.push(id);
        }
    }
    out
}

pub(crate) fn post_engine_cycles(elems: u64) -> u64 {
    elems.div_ceil(POST_ELEMS_PER_CYCLE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccelDesign, Device, Precision};
    use lcmm_graph::zoo;

    fn profile(graph: &Graph) -> (AccelDesign, GraphProfile) {
        let design = AccelDesign::explore(graph, &Device::vu9p(), Precision::Fix16);
        let p = design.profile(graph);
        (design, p)
    }

    #[test]
    fn table_covers_all_nodes() {
        let g = zoo::alexnet();
        let (_, p) = profile(&g);
        assert_eq!(p.per_node.len(), g.len());
        for (i, row) in p.per_node.iter().enumerate() {
            assert_eq!(row.id.index(), i);
        }
    }

    #[test]
    fn off_chip_latency_is_max_of_terms() {
        let l = OpLatency {
            id: NodeId::new(0),
            compute: 3.0,
            inputs: vec![(NodeId::new(1), 1.0), (NodeId::new(2), 2.5)],
            weight: 2.0,
            output: 1.0,
            fill: 0.1,
        };
        assert_eq!(l.input_total(), 3.5);
        assert_eq!(l.off_chip_latency(), 3.5);
        assert_eq!(l.on_chip_latency(), 3.0);
        assert_eq!(l.worst_transfer(), 3.5);
    }

    #[test]
    fn concat_nodes_are_free() {
        let g = zoo::googlenet();
        let (_, p) = profile(&g);
        let cat = g.node_by_name("inception_3a/output").unwrap().id();
        let row = p.node(cat);
        assert_eq!(row.compute, 0.0);
        assert!(row.inputs.is_empty());
        assert_eq!(row.output, 0.0);
    }

    #[test]
    fn concat_reads_resolve_to_branches() {
        let g = zoo::googlenet();
        // inception_3b's 1x1 conv reads inception_3a/output (a concat):
        // its sources must be the four branch tails of 3a.
        let conv = g.node_by_name("inception_3b/1x1").unwrap();
        let sources = resolved_sources(&g, conv);
        assert_eq!(sources.len(), 4);
        let names: Vec<&str> = sources.iter().map(|&s| g.node(s).name()).collect();
        assert!(names.contains(&"inception_3a/1x1"));
        assert!(names.contains(&"inception_3a/pool_proj"));
    }

    #[test]
    fn conv_rows_have_all_terms() {
        let g = zoo::resnet50();
        let (_, p) = profile(&g);
        let conv = g.node_by_name("res2a_branch2b").unwrap().id();
        let row = p.node(conv);
        assert!(row.compute > 0.0);
        assert!(row.weight > 0.0);
        assert!(row.output > 0.0);
        assert_eq!(row.inputs.len(), 1);
        assert!(row.inputs[0].1 > 0.0);
    }

    #[test]
    fn totals_are_ordered() {
        let g = zoo::googlenet();
        let (_, p) = profile(&g);
        assert!(p.compute_floor() > 0.0);
        assert!(p.total_latency() >= p.compute_floor());
    }

    #[test]
    fn some_layers_memory_bound_some_not() {
        let g = zoo::inception_v4();
        let (_, p) = profile(&g);
        let frac = p.memory_bound_fraction(&g);
        assert!(frac > 0.1, "too few memory-bound layers: {frac}");
        assert!(frac < 0.95, "everything memory bound: {frac}");
    }

    #[test]
    fn validate_rejects_nan_and_negative_terms() {
        let g = zoo::alexnet();
        let (_, mut p) = profile(&g);
        assert!(p.validate().is_ok());
        p.per_node[3].weight = f64::NAN;
        let err = p.validate().unwrap_err();
        assert!(err.contains("weight"), "{err}");
        p.per_node[3].weight = -1e-9;
        assert!(p.validate().is_err());
        p.per_node[3].weight = 0.0;
        assert!(p.validate().is_ok());
        p.per_node[2].inputs.push((NodeId::new(0), f64::INFINITY));
        let err = p.validate().unwrap_err();
        assert!(err.contains("input"), "{err}");
    }

    #[test]
    fn post_engine_rounds_up() {
        assert_eq!(post_engine_cycles(1), 1);
        assert_eq!(post_engine_cycles(64), 1);
        assert_eq!(post_engine_cycles(65), 2);
    }
}
