//! Tile-buffer sizing and per-layer tiling with DRAM reload accounting.
//!
//! The UMM baseline (Fig. 1 of the paper) streams every tensor through
//! fixed-size on-chip tile buffers. When a tensor exceeds its tile buffer
//! the affected loop is blocked, and one of the operands must be reloaded
//! from DRAM once per block of another — this multiplied traffic is where
//! much of the memory-boundedness of large layers comes from.

use crate::precision::Precision;
use lcmm_graph::fast_hash::FxHashMap;
use lcmm_graph::{ConvParams, FeatureShape};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Single-buffer (not double-buffered) capacities of the three tile
/// buffers, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileBudget {
    /// Input feature tile buffer (IB).
    pub ib_bytes: u64,
    /// Weight tile buffer (WB).
    pub wb_bytes: u64,
    /// Output feature tile buffer (OB).
    pub ob_bytes: u64,
}

impl TileBudget {
    /// The default budget, sized so the three double-buffered tile
    /// buffers land in the 10–20 % SRAM utilisation band that the
    /// paper's UMM designs report (Table 2).
    #[must_use]
    pub fn default_umm() -> Self {
        Self {
            ib_bytes: 768 * 1024,
            wb_bytes: 768 * 1024,
            ob_bytes: 512 * 1024,
        }
    }

    /// A reduced budget for LCMM designs, which shrink the tile buffers
    /// once tensor buffers absorb the large transfers (§4.1: "the sizes
    /// of tile buffers of LCMM designs is thereby smaller than UMM").
    #[must_use]
    pub fn default_lcmm() -> Self {
        Self {
            ib_bytes: 384 * 1024,
            wb_bytes: 384 * 1024,
            ob_bytes: 256 * 1024,
        }
    }

    /// Total SRAM footprint with double buffering.
    #[must_use]
    pub fn total_double_buffered(&self) -> u64 {
        2 * (self.ib_bytes + self.wb_bytes + self.ob_bytes)
    }
}

/// Loop-order template chosen per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopOrder {
    /// Output-channel tiles outermost: each weight block is loaded once,
    /// the input is reloaded once per output-channel tile.
    WeightStationary,
    /// Spatial tiles outermost: each input tile is loaded once, weights
    /// are reloaded once per spatial tile.
    InputStationary,
}

/// Tiling decision for one layer, with the resulting traffic multipliers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TileChoice {
    /// Output-channel tile (`Tm`).
    pub tm: usize,
    /// Input-channel tile (`Tc`).
    pub tc: usize,
    /// Output-row tile (`Th`); columns are never split.
    pub th: usize,
    /// Selected loop order.
    pub order: LoopOrder,
    /// DRAM traffic multiplier for the input feature tensor.
    pub reload_if: f64,
    /// DRAM traffic multiplier for the weight tensor.
    pub reload_wt: f64,
    /// DRAM traffic multiplier for the output tensor (partial-sum
    /// spilling when the input channels are blocked).
    pub reload_of: f64,
    /// Bytes of IB/WB/OB actually occupied (single buffer).
    pub buffer_bytes: [u64; 3],
}

impl TileChoice {
    /// A unit tiling for layers whose tensors all fit their buffers, or
    /// for non-convolution layers that stream.
    #[must_use]
    pub fn unit(buffer_bytes: [u64; 3]) -> Self {
        Self {
            tm: 1,
            tc: 1,
            th: 1,
            order: LoopOrder::WeightStationary,
            reload_if: 1.0,
            reload_wt: 1.0,
            reload_of: 1.0,
            buffer_bytes,
        }
    }
}

/// Memoization key for [`choose_tiling`]: the full argument tuple. Deep
/// networks repeat a handful of layer configurations hundreds of times
/// (every residual block of a stage shares shapes), so the enumeration
/// below is worth caching.
type TilingKey = (
    FeatureShape,
    FeatureShape,
    ConvParams,
    Precision,
    TileBudget,
);

thread_local! {
    /// Per-thread tiling cache. `choose_tiling` is a pure function of
    /// its arguments, so threads computing the same key independently
    /// still agree — parallel harness runs stay deterministic.
    static TILING_CACHE: RefCell<FxHashMap<TilingKey, TileChoice>> =
        RefCell::new(FxHashMap::default());
}

/// Chooses a tiling for a convolution layer.
///
/// Enumerates a small candidate lattice of `(Tm, Tc, Th)` tiles that fit
/// `budget`, evaluates both loop orders, and returns the choice that
/// minimises the worst per-interface transfer time (interfaces run in
/// parallel, so the max is what shows up in the layer's latency).
///
/// Results are memoized per thread by the full argument tuple; use
/// [`choose_tiling_uncached`] to force the enumeration (benchmarks).
#[must_use]
pub fn choose_tiling(
    input: FeatureShape,
    output: FeatureShape,
    params: &ConvParams,
    precision: Precision,
    budget: &TileBudget,
) -> TileChoice {
    let key = (input, output, *params, precision, *budget);
    if let Some(hit) = TILING_CACHE.with(|c| c.borrow().get(&key).copied()) {
        return hit;
    }
    let choice = choose_tiling_uncached(input, output, params, precision, budget);
    TILING_CACHE.with(|c| c.borrow_mut().insert(key, choice));
    choice
}

/// Number of distinct layer configurations cached on this thread.
/// Diagnostic for benchmarks sizing the memoization win.
#[must_use]
pub fn tiling_cache_entries() -> usize {
    TILING_CACHE.with(|c| c.borrow().len())
}

/// The uncached tiling enumeration behind [`choose_tiling`].
#[must_use]
pub fn choose_tiling_uncached(
    input: FeatureShape,
    output: FeatureShape,
    params: &ConvParams,
    precision: Precision,
    budget: &TileBudget,
) -> TileChoice {
    let b = precision.bytes();
    let (m, c) = (output.channels, input.channels);
    let (oh, ow) = (output.height, output.width);
    let k_elems = (params.kernel_h * params.kernel_w) as u64;
    let if_bytes = input.elems() * b;
    let wt_bytes = params.weight_elems(c) * b;
    let of_bytes = output.elems() * b;

    // Candidate lists and every per-candidate quantity that does not
    // involve all three tile extents are loop invariants; hoisting them
    // to the loop level where they are determined keeps the deep-network
    // profile pass cheap. The visit order and the exact float
    // expressions (values and association) are unchanged, so the chosen
    // tiling is bit-identical to the naive nesting.
    let tms = dim_candidates(m);
    let tcs = dim_candidates(c);
    let ths = dim_candidates(oh);
    // Per-Th invariants: halo'd input rows, spatial tile count, and the
    // input-stationary weight traffic `wt_bytes * n_s`.
    let th_rows: Vec<u64> = ths
        .iter()
        .map(|&th| {
            let ih = (th - 1) * params.stride_h + params.kernel_h;
            (ih.min(input.height) * input.width) as u64
        })
        .collect();
    let th_n_s: Vec<f64> = ths.iter().map(|&th| oh.div_ceil(th) as f64).collect();
    let th_wt_is: Vec<f64> = th_n_s.iter().map(|&n_s| wt_bytes as f64 * n_s).collect();
    // `x * 1.0` is exact for finite floats, so the reload-1 traffic is
    // just the tensor size.
    let wt_ws = wt_bytes as f64;
    let if_is = if_bytes as f64;
    let mut best: Option<(f64, TileChoice)> = None;
    for &tm in &tms {
        let n_m = m.div_ceil(tm) as f64;
        let if_ws = if_bytes as f64 * n_m;
        for &tc in &tcs {
            let wb_use = (tm * tc) as u64 * k_elems * b;
            if wb_use > budget.wb_bytes {
                continue;
            }
            let n_c = c.div_ceil(tc) as f64;
            let reload_of = if n_c > 1.0 { 2.0 * n_c - 1.0 } else { 1.0 };
            let of_t = of_bytes as f64 * reload_of;
            // Every candidate under this `tc` scores at least `of_t`
            // (the max includes it and the tie-break term is ≥ 0), so
            // once a better incumbent exists the whole Th × order block
            // is a strict loss — skipping it cannot change the winner.
            if let Some((score, _)) = &best {
                if of_t > *score {
                    continue;
                }
            }
            for (ti, &th) in ths.iter().enumerate() {
                let ib_use = tc as u64 * th_rows[ti] * b;
                let ob_use = (tm * th * ow) as u64 * b;
                if ib_use > budget.ib_bytes || ob_use > budget.ob_bytes {
                    continue;
                }
                let n_s = th_n_s[ti];
                for order in [LoopOrder::WeightStationary, LoopOrder::InputStationary] {
                    let (reload_if, reload_wt, if_t, wt_t) = match order {
                        LoopOrder::WeightStationary => (n_m, 1.0, if_ws, wt_ws),
                        LoopOrder::InputStationary => (1.0, n_s, if_is, th_wt_is[ti]),
                    };
                    // Interfaces are parallel; the max governs latency.
                    // A small total-traffic term breaks ties: secondary
                    // interfaces still burn bandwidth others could use.
                    let worst = if_t.max(wt_t).max(of_t) + (if_t + wt_t + of_t) * 1e-3;
                    // Ties go to the larger tile: fewer tile iterations
                    // means less control overhead and fuller bursts.
                    let better = match &best {
                        None => true,
                        Some((score, prev)) => {
                            worst < *score
                                || (worst == *score && tm * tc * th > prev.tm * prev.tc * prev.th)
                        }
                    };
                    if better {
                        best = Some((
                            worst,
                            TileChoice {
                                tm,
                                tc,
                                th,
                                order,
                                reload_if,
                                reload_wt,
                                reload_of,
                                buffer_bytes: [ib_use, wb_use, ob_use],
                            },
                        ));
                    }
                }
            }
        }
    }
    best.map_or_else(
        // Even a 1x1x1 tile over-ran a buffer: degenerate budget. Fall
        // back to element streaming with full reload pessimism.
        || TileChoice {
            tm: 1,
            tc: 1,
            th: 1,
            order: LoopOrder::WeightStationary,
            reload_if: m as f64,
            reload_wt: 1.0,
            reload_of: (2 * c - 1) as f64,
            buffer_bytes: [b * input.width as u64, k_elems * b, ow as u64 * b],
        },
        |(_, choice)| choice,
    )
}

/// Candidate tile extents for a dimension of size `n`: the full size and
/// halvings of it, deduplicated, largest first.
fn dim_candidates(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut v = n;
    loop {
        if !out.contains(&v) {
            out.push(v);
        }
        if v == 1 {
            break;
        }
        v = v.div_ceil(2);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_layer_gets_unit_reloads() {
        // Everything fits: 64ch 28x28 in, 128ch out, 3x3.
        let input = FeatureShape::new(64, 28, 28);
        let p = ConvParams::square(128, 3, 1, 1);
        let output = p.output_shape(input).unwrap();
        let t = choose_tiling(
            input,
            output,
            &p,
            Precision::Fix16,
            &TileBudget::default_umm(),
        );
        assert_eq!(t.reload_if, 1.0);
        assert_eq!(t.reload_wt, 1.0);
        assert_eq!(t.reload_of, 1.0);
        assert_eq!(t.tm, 128);
        assert_eq!(t.tc, 64);
    }

    #[test]
    fn oversized_weights_force_blocking() {
        // ResNet stage-5 3x3: 512 -> 512, 2.36 MB of 8-bit weights
        // against a 768 KB WB. Tc or Tm must split.
        let input = FeatureShape::new(512, 7, 7);
        let p = ConvParams::square(512, 3, 1, 1);
        let output = p.output_shape(input).unwrap();
        let t = choose_tiling(
            input,
            output,
            &p,
            Precision::Fix8,
            &TileBudget::default_umm(),
        );
        assert!(t.tm < 512 || t.tc < 512);
        assert!(t.buffer_bytes[1] <= TileBudget::default_umm().wb_bytes);
        // The worst transfer should still be weights loaded exactly once
        // (weight-stationary order), since the input here is tiny.
        assert_eq!(t.reload_wt, 1.0);
    }

    #[test]
    fn large_input_prefers_input_stationary_or_small_penalty() {
        // Early GoogLeNet conv: big fmap, small weights.
        let input = FeatureShape::new(64, 56, 56);
        let p = ConvParams::square(192, 3, 1, 1);
        let output = p.output_shape(input).unwrap();
        let t = choose_tiling(
            input,
            output,
            &p,
            Precision::Fix16,
            &TileBudget::default_umm(),
        );
        // Whatever the blocking, input traffic must not blow up: the
        // optimiser minimises the max interface.
        let if_traffic = input.elems() as f64 * 2.0 * t.reload_if;
        let wt_traffic = p.weight_elems(64) as f64 * 2.0 * t.reload_wt;
        assert!(if_traffic <= 4.0 * (if_traffic.min(wt_traffic)).max(1.0));
    }

    #[test]
    fn buffers_respect_budget() {
        let budget = TileBudget::default_lcmm();
        let input = FeatureShape::new(1024, 17, 17);
        let p = ConvParams::square(384, 1, 1, 0);
        let output = p.output_shape(input).unwrap();
        let t = choose_tiling(input, output, &p, Precision::Float32, &budget);
        assert!(t.buffer_bytes[0] <= budget.ib_bytes);
        assert!(t.buffer_bytes[1] <= budget.wb_bytes);
        assert!(t.buffer_bytes[2] <= budget.ob_bytes);
    }

    #[test]
    fn dim_candidates_halve() {
        assert_eq!(dim_candidates(17), vec![17, 9, 5, 3, 2, 1]);
        assert_eq!(dim_candidates(1), vec![1]);
    }

    #[test]
    fn partial_sum_spill_counted() {
        // Force a tiny WB so Tc must split, and check OF reloads rise.
        let budget = TileBudget {
            ib_bytes: 1 << 20,
            wb_bytes: 16 * 1024,
            ob_bytes: 1 << 20,
        };
        let input = FeatureShape::new(512, 14, 14);
        let p = ConvParams::square(512, 3, 1, 1);
        let output = p.output_shape(input).unwrap();
        let t = choose_tiling(input, output, &p, Precision::Fix16, &budget);
        assert!(t.tc < 512 || t.tm * t.tc * 9 * 2 <= 16 * 1024);
        if t.tc < 512 {
            assert!(t.reload_of > 1.0);
        }
    }

    #[test]
    fn cached_and_uncached_agree() {
        let budget = TileBudget::default_umm();
        for (c, hw, m, k) in [(64, 56, 192, 3), (512, 7, 512, 3), (1024, 17, 384, 1)] {
            let input = FeatureShape::new(c, hw, hw);
            let p = ConvParams::square(m, k, 1, k / 2);
            let output = p.output_shape(input).unwrap();
            for precision in [Precision::Fix8, Precision::Fix16, Precision::Float32] {
                let cached = choose_tiling(input, output, &p, precision, &budget);
                let again = choose_tiling(input, output, &p, precision, &budget);
                let direct = choose_tiling_uncached(input, output, &p, precision, &budget);
                assert_eq!(cached, direct);
                assert_eq!(again, direct);
            }
        }
    }

    #[test]
    fn budget_totals() {
        let b = TileBudget::default_umm();
        assert_eq!(b.total_double_buffered(), 2 * (768 + 768 + 512) * 1024);
        assert!(TileBudget::default_lcmm().total_double_buffered() < b.total_double_buffered());
    }
}
