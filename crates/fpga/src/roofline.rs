//! Roofline characterisation of a network on a design (paper Fig. 2(a)).

use crate::design::AccelDesign;
use crate::latency::{Boundedness, GraphProfile};
use lcmm_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// One layer's point in the roofline plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// The layer.
    pub id: NodeId,
    /// Operation intensity: ops per byte of DRAM traffic (including
    /// tiling reloads).
    pub intensity: f64,
    /// Attainable performance in ops/s: ops divided by the layer's
    /// latency with all tensors off-chip.
    pub attainable_ops: f64,
    /// DRAM bandwidth the layer would need to become compute bound,
    /// bytes/s (the paper's "needs 70 GB/s" metric).
    pub required_bandwidth: f64,
    /// Compute- or memory-bound classification.
    pub bound: Boundedness,
}

/// The roofline report for one network/design pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RooflineReport {
    /// One point per compute layer, in topological order.
    pub points: Vec<RooflinePoint>,
    /// Design peak performance, ops/s.
    pub peak_ops: f64,
    /// Sustained per-interface bandwidth, bytes/s.
    pub interface_bandwidth: f64,
}

impl RooflineReport {
    /// Characterises every compute layer of `graph` under `design`.
    #[must_use]
    pub fn build(graph: &Graph, design: &AccelDesign) -> Self {
        let profile = GraphProfile::build(graph, design);
        Self::from_profile(graph, design, &profile)
    }

    /// Characterisation from an existing latency table.
    #[must_use]
    pub fn from_profile(graph: &Graph, design: &AccelDesign, profile: &GraphProfile) -> Self {
        let bw = design.interface_bandwidth();
        let points = graph
            .compute_layers()
            .map(|n| {
                let row = profile.node(n.id());
                let ops = 2 * graph.node_macs(n.id());
                // Traffic implied by the transfer terms (they were
                // computed as bytes/bw, so bytes = term * bw).
                let bytes = (row.input_total() + row.weight + row.output) * bw;
                let lat = row.off_chip_latency();
                let transfer_bytes_worst = row.worst_transfer() * bw;
                RooflinePoint {
                    id: n.id(),
                    intensity: if bytes > 0.0 {
                        ops as f64 / bytes
                    } else {
                        f64::INFINITY
                    },
                    attainable_ops: if lat > 0.0 { ops as f64 / lat } else { 0.0 },
                    required_bandwidth: if row.compute > 0.0 {
                        transfer_bytes_worst / row.compute
                    } else {
                        0.0
                    },
                    bound: profile.boundedness(n.id()),
                }
            })
            .collect();
        Self {
            points,
            peak_ops: design.peak_ops(),
            interface_bandwidth: bw,
        }
    }

    /// Number of memory-bound layers.
    #[must_use]
    pub fn memory_bound_count(&self) -> usize {
        self.points
            .iter()
            .filter(|p| p.bound == Boundedness::Memory)
            .count()
    }

    /// Fraction of layers that are memory bound.
    #[must_use]
    pub fn memory_bound_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.memory_bound_count() as f64 / self.points.len() as f64
    }

    /// Among memory-bound layers, the fraction whose required bandwidth
    /// exceeds `bytes_per_sec` (the paper: ">60 % of them even need
    /// 70 GB/s").
    #[must_use]
    pub fn fraction_needing_bandwidth(&self, bytes_per_sec: f64) -> f64 {
        let mem: Vec<&RooflinePoint> = self
            .points
            .iter()
            .filter(|p| p.bound == Boundedness::Memory)
            .collect();
        if mem.is_empty() {
            return 0.0;
        }
        mem.iter()
            .filter(|p| p.required_bandwidth > bytes_per_sec)
            .count() as f64
            / mem.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, Precision};
    use lcmm_graph::zoo;

    #[test]
    fn report_has_one_point_per_compute_layer() {
        let g = zoo::googlenet();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix16);
        let r = RooflineReport::build(&g, &d);
        assert_eq!(r.points.len(), g.compute_layers().count());
    }

    #[test]
    fn attainable_never_exceeds_peak_materially() {
        let g = zoo::resnet50();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix8);
        let r = RooflineReport::build(&g, &d);
        for p in &r.points {
            assert!(
                p.attainable_ops <= r.peak_ops * 1.0 + 1e-6,
                "layer {} attains {} above peak {}",
                p.id,
                p.attainable_ops,
                r.peak_ops
            );
        }
    }

    #[test]
    fn memory_bound_layers_have_high_required_bandwidth() {
        let g = zoo::inception_v4();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix8);
        let r = RooflineReport::build(&g, &d);
        for p in &r.points {
            if p.bound == Boundedness::Memory {
                assert!(p.required_bandwidth > r.interface_bandwidth);
            }
        }
    }

    #[test]
    fn fractions_are_probabilities() {
        let g = zoo::inception_v4();
        let d = AccelDesign::explore(&g, &Device::vu9p(), Precision::Fix8);
        let r = RooflineReport::build(&g, &d);
        let f = r.memory_bound_fraction();
        assert!((0.0..=1.0).contains(&f));
        let f70 = r.fraction_needing_bandwidth(70e9);
        assert!((0.0..=1.0).contains(&f70));
    }
}
