//! Characterises the benchmark suite on the VU9P performance model:
//! chosen array, memory-bound fraction, UMM latency vs compute floor.
//!
//! ```text
//! cargo run --release -p lcmm-fpga --example characterize
//! ```

use lcmm_fpga::{AccelDesign, Device, Precision};

fn main() {
    println!(
        "{:14} {:7} {:18} {:>5} {:>8} {:>9} {:>9} {:>9}",
        "network", "prec", "array (r x c x s)", "DSP%", "mb-frac", "UMM ms", "floor ms", "headroom"
    );
    for graph in lcmm_graph::zoo::benchmark_suite() {
        for precision in Precision::ALL {
            let design = AccelDesign::explore(&graph, &Device::vu9p(), precision);
            let profile = design.profile(&graph);
            let umm = profile.total_latency();
            let floor = profile.compute_floor();
            println!(
                "{:14} {:7} {:>4}x{:<3}x{:<3}       {:>5.0} {:>8.2} {:>9.2} {:>9.2} {:>8.2}x",
                graph.name(),
                precision.label(),
                design.array.rows,
                design.array.cols,
                design.array.simd,
                design.dsp_utilization() * 100.0,
                profile.memory_bound_fraction(&graph),
                umm * 1e3,
                floor * 1e3,
                umm / floor
            );
        }
    }
    println!(
        "\n`headroom` is the speedup a perfect memory manager could reach; LCMM's \
         achieved speedups (see the lcmm CLI's table1) capture most of it."
    );
}
