//! Property tests over the performance-model substrate: tiling, array
//! quantisation, latency tables.

use lcmm_fpga::{AccelDesign, Device, Precision, SystolicArray, TileBudget};
use lcmm_graph::{ConvParams, FeatureShape};
use proptest::prelude::*;

fn arb_precision() -> impl Strategy<Value = Precision> {
    prop_oneof![
        Just(Precision::Fix8),
        Just(Precision::Fix16),
        Just(Precision::Float32)
    ]
}

fn arb_conv_case() -> impl Strategy<Value = (FeatureShape, ConvParams)> {
    (
        1usize..512,
        4usize..64,
        1usize..512,
        prop_oneof![Just(1usize), Just(3), Just(5), Just(7)],
    )
        .prop_map(|(c, hw, m, k)| {
            let input = FeatureShape::new(c, hw, hw);
            let params = ConvParams::square(m, k.min(hw), 1, (k.min(hw) - 1) / 2);
            (input, params)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tiling always respects the buffer budget and never produces
    /// reload factors below 1.
    #[test]
    fn tiling_respects_budget((input, params) in arb_conv_case(), precision in arb_precision()) {
        let budget = TileBudget::default_umm();
        let output = params.output_shape(input).expect("same-pad conv is valid");
        let t = lcmm_fpga::choose_tiling(input, output, &params, precision, &budget);
        prop_assert!(t.buffer_bytes[0] <= budget.ib_bytes);
        prop_assert!(t.buffer_bytes[1] <= budget.wb_bytes);
        prop_assert!(t.buffer_bytes[2] <= budget.ob_bytes);
        prop_assert!(t.reload_if >= 1.0);
        prop_assert!(t.reload_wt >= 1.0);
        prop_assert!(t.reload_of >= 1.0);
        prop_assert!(t.tm >= 1 && t.tc >= 1 && t.th >= 1);
        prop_assert!(t.tm <= output.channels && t.tc <= input.channels && t.th <= output.height);
    }

    /// Array cycle counts are never below the ideal MAC count divided by
    /// the array width, and the quantisation penalty is bounded by the
    /// per-dimension ceilings.
    #[test]
    fn array_cycles_bounded((input, params) in arb_conv_case(),
                            rows in prop_oneof![Just(8usize), Just(16), Just(32), Just(64)],
                            cols in prop_oneof![Just(7usize), Just(14), Just(22)],
                            simd in prop_oneof![Just(2usize), Just(4), Just(8)]) {
        let output = params.output_shape(input).expect("valid");
        let array = SystolicArray::new(rows, cols, simd);
        let overhead = 2_000u64;
        let cycles = array.conv_cycles(
            output.channels, output.height, output.width,
            input.channels, params.kernel_h, params.kernel_w,
        ) - overhead;
        let macs = params.macs(input, output);
        let ideal = macs.div_ceil(array.macs_per_cycle());
        prop_assert!(cycles >= ideal, "cycles {} below ideal {}", cycles, ideal);
        // Ceiling quantisation can cost at most one extra tile per dim.
        let worst = (output.channels.div_ceil(rows) as u64)
            * (output.width.div_ceil(cols) as u64)
            * output.height as u64
            * (input.channels.div_ceil(simd) as u64)
            * (params.kernel_h * params.kernel_w) as u64;
        prop_assert_eq!(cycles, worst);
    }

    /// Per-node latency rows are finite, non-negative, and consistent:
    /// doubling precision bytes never decreases transfer latencies.
    #[test]
    fn latency_rows_monotone_in_bytes(seed in 0u64..1000) {
        let g = lcmm_graph::zoo::alexnet();
        let device = Device::vu9p();
        let _ = seed;
        let d8 = AccelDesign::explore(&g, &device, Precision::Fix8);
        let d32 = AccelDesign::explore(&g, &device, Precision::Float32);
        let p8 = d8.profile(&g);
        let p32 = d32.profile(&g);
        for node in g.iter() {
            let r8 = p8.node(node.id());
            let r32 = p32.node(node.id());
            prop_assert!(r8.compute.is_finite() && r8.compute >= 0.0);
            prop_assert!(r32.weight + 1e-15 >= r8.weight);
            prop_assert!(r32.output + 1e-15 >= r8.output);
            prop_assert!(r32.input_total() + 1e-15 >= r8.input_total());
        }
    }
}
