//! Analytic-model-vs-simulator validation (experiment A3).
//!
//! The analytic model assumes perfect per-layer overlap and contention-
//! free channels; the simulator relaxes both. This module measures the
//! drift so EXPERIMENTS.md can report how trustworthy the analytic
//! numbers are.

use crate::engine::{SimConfig, Simulator, WeightClass};
use lcmm_core::{Evaluator, LcmmResult, Residency, UmmBaseline, ValueId, WeightMode};
use lcmm_graph::Graph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Analytic and simulated latency for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationPoint {
    /// Analytic end-to-end latency, seconds.
    pub analytic: f64,
    /// Simulated steady-state latency, seconds.
    pub simulated: f64,
}

impl ValidationPoint {
    /// `simulated / analytic` — 1.0 means perfect agreement; values
    /// above 1 mean the analytic model is optimistic.
    ///
    /// # Panics
    ///
    /// Panics unless both latencies are positive finite numbers. A
    /// zero or negative analytic latency would otherwise turn the
    /// drift ratio into `inf`/`NaN`, which serialises into the
    /// experiment tables as a plausible-looking column instead of
    /// failing the run that produced it.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        assert!(
            self.analytic.is_finite() && self.analytic > 0.0,
            "analytic latency must be positive and finite, got {}",
            self.analytic
        );
        assert!(
            self.simulated.is_finite() && self.simulated > 0.0,
            "simulated latency must be positive and finite, got {}",
            self.simulated
        );
        self.simulated / self.analytic
    }
}

/// UMM and LCMM validation for one network/precision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Uniform memory management (empty residency).
    pub umm: ValidationPoint,
    /// Full LCMM allocation.
    pub lcmm: ValidationPoint,
}

/// Derives the per-weight sharing classes from an LCMM result: weights
/// in multi-member chosen buffers are [`WeightClass::Shared`], and
/// single-member weight buffers follow the plan's per-buffer
/// [`WeightMode`] (pinned → persistent, streamed/partial → the matching
/// re-streaming class).
#[must_use]
pub fn weight_classes(result: &LcmmResult) -> HashMap<lcmm_graph::NodeId, WeightClass> {
    let mut classes = HashMap::new();
    for (i, (buf, &chosen)) in result.buffers.iter().zip(&result.chosen).enumerate() {
        if !chosen {
            continue;
        }
        let class = if buf.members.len() > 1 {
            WeightClass::Shared
        } else {
            match result
                .weight_modes
                .get(i)
                .copied()
                .unwrap_or(WeightMode::Pinned)
            {
                WeightMode::Pinned => WeightClass::Persistent,
                WeightMode::Streamed { double_buffered } => {
                    WeightClass::Streamed { double_buffered }
                }
                WeightMode::PartialResident { resident_bytes } => WeightClass::PartialResident {
                    resident_bytes,
                    total_bytes: buf.bytes,
                },
            }
        };
        for &m in &buf.members {
            if let ValueId::Weight(n) = m {
                classes.insert(n, class);
            }
        }
    }
    classes
}

/// Derives the per-node fused tile counts from an LCMM result's fusion
/// plan, in the shape [`SimConfig::fused_tiles`] expects. Empty when
/// the plan fused nothing (the legacy pipeline).
#[must_use]
pub fn fused_tiles(result: &LcmmResult) -> HashMap<lcmm_graph::NodeId, usize> {
    result.fusion.tile_table().collect()
}

/// The latency table an LCMM result actually planned against: the raw
/// design profile with the result's fusion plan applied (identity when
/// nothing fused). Both the simulator and the analytic cross-checks
/// must use this table, or fused plans would be judged against
/// transfers they eliminated.
#[must_use]
pub fn effective_profile(graph: &Graph, result: &LcmmResult) -> lcmm_fpga::GraphProfile {
    let profile = result.design.profile(graph);
    if result.fusion.is_empty() {
        profile
    } else {
        result.fusion.apply(&profile)
    }
}

/// Simulates an LCMM result with its prefetch plan, sharing classes,
/// and — for fused plans — per-tile execution of fused group members.
#[must_use]
pub fn simulate_lcmm(graph: &Graph, result: &LcmmResult) -> f64 {
    let profile = effective_profile(graph, result);
    let sim = Simulator::new(graph, &profile);
    let config = SimConfig::default()
        .with_inferences(2) // steady state after the first pass
        .with_weight_classes(weight_classes(result))
        .with_prefetch(result.prefetch.clone())
        .with_fused_tiles(fused_tiles(result));
    sim.run(&result.residency, &config).steady_latency
}

/// Runs the full validation for one UMM/LCMM pair.
#[must_use]
pub fn validate(graph: &Graph, umm: &UmmBaseline, lcmm: &LcmmResult) -> ValidationReport {
    let umm_sim = Simulator::new(graph, &umm.profile).run(&Residency::new(), &SimConfig::default());
    let lcmm_profile = effective_profile(graph, lcmm);
    let lcmm_eval = Evaluator::new(graph, &lcmm_profile);
    ValidationReport {
        umm: ValidationPoint {
            analytic: umm.latency,
            simulated: umm_sim.steady_latency,
        },
        lcmm: ValidationPoint {
            analytic: lcmm_eval.total_latency(&lcmm.residency),
            simulated: simulate_lcmm(graph, lcmm),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_core::pipeline::compare;
    use lcmm_fpga::{Device, Precision};
    use lcmm_graph::zoo;

    #[test]
    fn analytic_model_within_band_of_simulator() {
        let g = zoo::googlenet();
        let (umm, lcmm) = compare(&g, &Device::vu9p(), Precision::Fix16);
        let report = validate(&g, &umm, &lcmm);
        // The simulator adds contention, so it may only be slower —
        // but not wildly so.
        assert!(
            report.umm.ratio() >= 0.99,
            "umm ratio {}",
            report.umm.ratio()
        );
        assert!(report.umm.ratio() < 1.5, "umm ratio {}", report.umm.ratio());
        assert!(
            report.lcmm.ratio() >= 0.99,
            "lcmm ratio {}",
            report.lcmm.ratio()
        );
        assert!(
            report.lcmm.ratio() < 1.6,
            "lcmm ratio {}",
            report.lcmm.ratio()
        );
    }

    #[test]
    fn simulated_speedup_preserved() {
        // The paper's headline must survive simulation: LCMM beats UMM
        // with contention modelled.
        let g = zoo::googlenet();
        let (umm, lcmm) = compare(&g, &Device::vu9p(), Precision::Fix16);
        let report = validate(&g, &umm, &lcmm);
        let sim_speedup = report.umm.simulated / report.lcmm.simulated;
        assert!(sim_speedup > 1.05, "simulated speedup only {sim_speedup}");
    }

    #[test]
    fn ratio_of_valid_point() {
        let p = ValidationPoint {
            analytic: 0.004,
            simulated: 0.005,
        };
        assert!((p.ratio() - 1.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "analytic latency must be positive")]
    fn ratio_rejects_zero_analytic() {
        let p = ValidationPoint {
            analytic: 0.0,
            simulated: 0.005,
        };
        let _ = p.ratio();
    }

    #[test]
    #[should_panic(expected = "simulated latency must be positive")]
    fn ratio_rejects_nan_simulated() {
        let p = ValidationPoint {
            analytic: 0.004,
            simulated: f64::NAN,
        };
        let _ = p.ratio();
    }

    #[test]
    fn fused_plans_validate_within_band() {
        use lcmm_core::{FusionMode, LcmmOptions, PlanRequest, UmmBaseline};
        let g = zoo::resnet50();
        let device = Device::vu9p();
        let umm = UmmBaseline::build(&g, &device, Precision::Fix16);
        let design = lcmm_fpga::AccelDesign::explore(&g, &device, Precision::Fix16);
        let budget = Some(design.tensor_sram_budget() / 8);
        let lcmm = PlanRequest::new(&g, &device, Precision::Fix16)
            .options(
                LcmmOptions::default()
                    .with_fusion(FusionMode::Auto)
                    .with_tensor_budget(budget),
            )
            .with_design(design)
            .run()
            .unwrap();
        assert!(!lcmm.fusion.is_empty(), "expected fused groups");
        assert!(!fused_tiles(&lcmm).is_empty());
        let report = validate(&g, &umm, &lcmm);
        // The analytic side of the report must be the plan's own
        // latency: validate() scores fused plans on the fused table.
        assert!(
            (report.lcmm.analytic - lcmm.latency).abs() <= 1e-9 * lcmm.latency,
            "validate() disagrees with the plan: {} vs {}",
            report.lcmm.analytic,
            lcmm.latency
        );
        let ratio = report.lcmm.ratio();
        assert!((0.99..1.6).contains(&ratio), "fused lcmm ratio {ratio}");
    }

    #[test]
    fn weight_classes_follow_buffer_sharing() {
        let g = zoo::resnet152();
        let (_, lcmm) = compare(&g, &Device::vu9p(), Precision::Fix16);
        let classes = weight_classes(&lcmm);
        // There must be at least one shared weight buffer in a network
        // this deep, and classes only for resident weights.
        for node in classes.keys() {
            assert!(lcmm.residency.contains(ValueId::Weight(*node)));
        }
        assert!(
            classes.values().any(|&c| c == WeightClass::Shared),
            "expected some shared weight buffers"
        );
    }
}
