//! FIFO DMA channel timelines.

use serde::{Deserialize, Serialize};

/// The three tensor interfaces of the accelerator (paper §2.2: each is
/// assigned one third of the aggregate DDR bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelKind {
    /// Input feature reads.
    InputFeature,
    /// Weight reads (demand streams and prefetches).
    Weight,
    /// Output feature writes.
    OutputFeature,
}

/// A DMA channel modelled as a FIFO timeline: jobs occupy the channel
/// back to back, never overlapping.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Channel {
    busy_until: f64,
    busy_total: f64,
    jobs: usize,
}

impl Channel {
    /// A fresh, idle channel.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a job that becomes *eligible* at `ready` and needs
    /// `duration` seconds of channel time; returns its completion time.
    pub fn enqueue(&mut self, ready: f64, duration: f64) -> f64 {
        self.enqueue_span(ready, duration).1
    }

    /// Like [`Channel::enqueue`] but returns the `(start, end)` span
    /// the job actually occupied (equal times for zero-length jobs).
    ///
    /// # Panics
    ///
    /// Panics on negative `ready` or `duration`.
    pub fn enqueue_span(&mut self, ready: f64, duration: f64) -> (f64, f64) {
        assert!(duration >= 0.0 && ready >= 0.0, "negative time");
        if duration == 0.0 {
            return (ready, ready);
        }
        let start = self.busy_until.max(ready);
        self.busy_until = start + duration;
        self.busy_total += duration;
        self.jobs += 1;
        (start, self.busy_until)
    }

    /// Time at which the channel next becomes idle.
    #[must_use]
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }

    /// Total seconds of traffic carried.
    #[must_use]
    pub fn busy_total(&self) -> f64 {
        self.busy_total
    }

    /// Number of non-empty jobs carried.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Channel utilisation over a horizon: the *raw* busy/horizon
    /// ratio. A FIFO channel never overlaps jobs, so a ratio above 1.0
    /// means the horizon is shorter than the carried traffic — clamping
    /// here would silently hide such a bandwidth-accounting bug. Clamp
    /// at the presentation layer ([`Channel::utilization_clamped`]) if
    /// a bounded number is needed.
    #[must_use]
    pub fn utilization(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        self.busy_total / horizon
    }

    /// [`Channel::utilization`] clamped to `[0, 1]` for display.
    #[must_use]
    pub fn utilization_clamped(&self, horizon: f64) -> f64 {
        self.utilization(horizon).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_serialize_fifo() {
        let mut c = Channel::new();
        assert_eq!(c.enqueue(0.0, 2.0), 2.0);
        // Ready earlier than the channel frees: starts at 2.0.
        assert_eq!(c.enqueue(1.0, 3.0), 5.0);
        // Ready after the channel frees: idle gap allowed.
        assert_eq!(c.enqueue(10.0, 1.0), 11.0);
        assert_eq!(c.jobs(), 3);
        assert!((c.busy_total() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_jobs_are_free() {
        let mut c = Channel::new();
        assert_eq!(c.enqueue(5.0, 0.0), 5.0);
        assert_eq!(c.jobs(), 0);
        assert_eq!(c.busy_until(), 0.0);
    }

    #[test]
    fn utilization_is_the_raw_ratio() {
        let mut c = Channel::new();
        c.enqueue(0.0, 4.0);
        assert!((c.utilization(8.0) - 0.5).abs() < 1e-12);
        assert_eq!(c.utilization(0.0), 0.0);
        // Intentional semantic change: a horizon shorter than the
        // carried traffic reports > 1.0 instead of being clamped.
        assert_eq!(c.utilization(1.0), 4.0);
        assert_eq!(c.utilization_clamped(1.0), 1.0);
        assert_eq!(c.utilization_clamped(8.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_duration_panics() {
        let mut c = Channel::new();
        c.enqueue(0.0, -1.0);
    }
}
