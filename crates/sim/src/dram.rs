//! Transaction-level DDR4 bank model.
//!
//! The analytic stack derates DRAM bandwidth with either a flat factor
//! or a chunk-size formula (`lcmm_fpga::DdrConfig`). This module is the
//! ground truth behind those numbers: a bank-state simulator that
//! executes an address stream command by command (activate, column
//! access, precharge) and reports the achieved bandwidth. The
//! `stream_efficiency` experiment reproduces the calibration curve:
//! short strided chunks (tiled feature rows) sustain ~0.2 of peak,
//! multi-KB sequential runs approach 1.0.

use serde::{Deserialize, Serialize};

/// DDR4-2400-class timing, expressed in nanoseconds and bus bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Activate-to-column delay (tRCD), ns.
    pub t_rcd_ns: f64,
    /// Precharge time (tRP), ns.
    pub t_rp_ns: f64,
    /// Column access latency (CL), ns.
    pub t_cl_ns: f64,
    /// Bytes transferred per column burst (BL8 on a 64-bit bus).
    pub burst_bytes: u64,
    /// Time one burst occupies the data bus, ns.
    pub burst_ns: f64,
    /// Row-buffer (page) size per bank, bytes.
    pub row_bytes: u64,
    /// Number of banks the controller interleaves over.
    pub banks: usize,
}

impl DramTiming {
    /// DDR4-2400 on a 64-bit channel: 19.2 GB/s peak, 14-14-14-ish
    /// timing, 8 KB pages, 16 banks.
    #[must_use]
    pub fn ddr4_2400() -> Self {
        Self {
            t_rcd_ns: 14.0,
            t_rp_ns: 14.0,
            t_cl_ns: 14.0,
            burst_bytes: 64,
            burst_ns: 64.0 / 19.2, // 64 B at 19.2 GB/s
            row_bytes: 8 * 1024,
            banks: 16,
        }
    }

    /// Theoretical peak bandwidth, bytes per ns.
    #[must_use]
    pub fn peak_bytes_per_ns(&self) -> f64 {
        self.burst_bytes as f64 / self.burst_ns
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_ns: f64,
}

/// A bank-state DRAM channel simulator.
#[derive(Debug, Clone)]
pub struct DramModel {
    timing: DramTiming,
    banks: Vec<Bank>,
    /// Time the shared data bus frees.
    bus_free_ns: f64,
    /// Bytes actually delivered.
    delivered: u64,
    /// Completion time of the last access.
    now_ns: f64,
}

impl DramModel {
    /// Creates an idle channel with all rows closed.
    #[must_use]
    pub fn new(timing: DramTiming) -> Self {
        Self {
            banks: vec![Bank::default(); timing.banks],
            timing,
            bus_free_ns: 0.0,
            delivered: 0,
            now_ns: 0.0,
        }
    }

    /// Reads `bytes` starting at `addr`, returning the completion time
    /// in ns. Bursts walk the address range; bank and row are decoded
    /// from the address (row-interleaved mapping).
    pub fn access(&mut self, addr: u64, bytes: u64) -> f64 {
        let t = self.timing;
        let mut cursor = addr;
        let end = addr + bytes.max(1);
        while cursor < end {
            let row_global = cursor / t.row_bytes;
            let bank_idx = (row_global % t.banks as u64) as usize;
            let row = row_global / t.banks as u64;
            let bank = &mut self.banks[bank_idx];
            // Row hit: column commands pipeline, so the burst can start
            // as soon as the bank and bus free. Row miss: pay precharge
            // (if a row is open), activate, and the first column access
            // latency serially.
            let mut ready = bank.ready_ns.max(self.now_ns);
            if bank.open_row != Some(row) {
                if bank.open_row.is_some() {
                    ready += t.t_rp_ns;
                }
                ready += t.t_rcd_ns + t.t_cl_ns;
                bank.open_row = Some(row);
            }
            let data_start = ready.max(self.bus_free_ns);
            let data_end = data_start + t.burst_ns;
            bank.ready_ns = data_end;
            self.bus_free_ns = data_end;
            self.now_ns = data_end;
            let take = t.burst_bytes.min(end - cursor);
            self.delivered += take;
            cursor += t.burst_bytes;
        }
        self.now_ns
    }

    /// Achieved bandwidth so far relative to peak.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        if self.now_ns <= 0.0 {
            return 0.0;
        }
        (self.delivered as f64 / self.now_ns) / self.timing.peak_bytes_per_ns()
    }

    /// Bytes delivered so far.
    #[must_use]
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered
    }
}

/// Measures sustained efficiency for a stream of `chunks` reads of
/// `chunk_bytes` each, placed `stride_bytes` apart — the access pattern
/// of a tiled tensor (chunk = contiguous run, stride = the jump to the
/// next run).
#[must_use]
pub fn stream_efficiency(
    timing: DramTiming,
    chunk_bytes: u64,
    stride_bytes: u64,
    chunks: u64,
) -> f64 {
    let mut model = DramModel::new(timing);
    let mut addr = 0u64;
    for _ in 0..chunks.max(1) {
        model.access(addr, chunk_bytes);
        addr += stride_bytes.max(chunk_bytes);
    }
    model.efficiency()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::ddr4_2400()
    }

    #[test]
    fn sequential_stream_approaches_peak() {
        // One huge contiguous read: only one activation per row.
        let eff = stream_efficiency(t(), 1 << 20, 1 << 20, 4);
        assert!(eff > 0.85, "got {eff}");
    }

    #[test]
    fn short_strided_chunks_are_slow() {
        // 112-byte chunks strided a page apart: every chunk is a row
        // miss — the tiled-feature worst case the flat 0.21 knob models.
        let eff = stream_efficiency(t(), 112, 64 * 1024, 2000);
        assert!((0.05..0.40).contains(&eff), "got {eff}");
    }

    #[test]
    fn efficiency_is_monotone_in_chunk_size() {
        let mut last = 0.0;
        for chunk in [64u64, 128, 256, 512, 1024, 4096, 16384] {
            let eff = stream_efficiency(t(), chunk, 64 * 1024, 500);
            assert!(eff >= last - 1e-9, "chunk {chunk}: {eff} < {last}");
            last = eff;
        }
    }

    #[test]
    fn transaction_sim_matches_analytic_overhead_model() {
        // The fpga crate's closed form eff = c/(c + overhead) should
        // track the transaction simulation within a factor across the
        // relevant chunk range.
        let ddr = lcmm_fpga::DdrConfig::ddr4_x4();
        for chunk in [112u64, 224, 512, 2048, 8192] {
            let simulated = stream_efficiency(t(), chunk, 64 * 1024, 1000);
            let analytic = ddr.chunk_efficiency(chunk);
            let ratio = simulated / analytic;
            assert!(
                (0.4..2.5).contains(&ratio),
                "chunk {chunk}: simulated {simulated:.3} vs analytic {analytic:.3}"
            );
        }
    }

    #[test]
    fn row_hits_are_cheaper_than_misses() {
        let mut hitter = DramModel::new(t());
        // Two reads in the same row.
        hitter.access(0, 64);
        let before = hitter.now_ns;
        hitter.access(64, 64);
        let hit_cost = hitter.now_ns - before;

        let mut misser = DramModel::new(t());
        misser.access(0, 64);
        let before = misser.now_ns;
        // Same bank (banks stride row_bytes * banks), different row.
        misser.access(t().row_bytes * t().banks as u64, 64);
        let miss_cost = misser.now_ns - before;
        assert!(miss_cost > hit_cost, "{miss_cost} <= {hit_cost}");
    }

    #[test]
    fn delivered_bytes_accumulate_exactly() {
        let mut m = DramModel::new(t());
        m.access(0, 100);
        m.access(4096, 28);
        assert_eq!(m.delivered_bytes(), 128);
        assert!(m.efficiency() > 0.0);
    }
}
