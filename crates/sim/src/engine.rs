//! The schedule execution engine.

use crate::channel::{Channel, ChannelKind};
use lcmm_core::liveness::Schedule;
use lcmm_core::prefetch::PrefetchPlan;
use lcmm_core::{Residency, ValueId};
use lcmm_fpga::GraphProfile;
use lcmm_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// How a resident weight buffer behaves across inferences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightClass {
    /// The weight owns its buffer: loaded once, reused by every
    /// inference — no steady-state traffic.
    Persistent,
    /// The weight shares its buffer with another layer's weight
    /// (disjoint prefetch spans): it must be re-prefetched every
    /// inference.
    Shared,
    /// The weight lives in a small ping-pong buffer and re-streams in
    /// full every inference. With `double_buffered` the stream launches
    /// at its planned prefetch edge and overlaps compute; without, it
    /// demand-loads at the consumer (full stall).
    Streamed {
        /// Whether the stream overlaps compute via the planned edge.
        double_buffered: bool,
    },
    /// `resident_bytes` of the weight stay pinned after a cold-start
    /// load; the remaining fraction re-streams every inference at the
    /// planned edge.
    PartialResident {
        /// Bytes kept permanently on chip.
        resident_bytes: u64,
        /// Total weight bytes (denominator of the resident fraction).
        total_bytes: u64,
    },
}

impl WeightClass {
    /// Fraction of the weight's load time that re-streams every
    /// inference in the steady state.
    #[must_use]
    pub fn steady_fraction(&self) -> f64 {
        match self {
            Self::Persistent => 0.0,
            Self::Shared | Self::Streamed { .. } => 1.0,
            Self::PartialResident {
                resident_bytes,
                total_bytes,
            } => {
                if *total_bytes == 0 {
                    0.0
                } else {
                    1.0 - *resident_bytes as f64 / *total_bytes as f64
                }
            }
        }
    }

    /// Fraction loaded once at cold start and kept resident.
    #[must_use]
    pub fn resident_fraction(&self) -> f64 {
        match self {
            Self::Persistent => 1.0,
            Self::Shared | Self::Streamed { .. } => 0.0,
            Self::PartialResident {
                resident_bytes,
                total_bytes,
            } => {
                if *total_bytes == 0 {
                    1.0
                } else {
                    (*resident_bytes as f64 / *total_bytes as f64).min(1.0)
                }
            }
        }
    }

    /// Whether the per-inference stream launches at its planned
    /// prefetch edge (overlapping compute) rather than demand-loading
    /// at the consumer.
    fn launches_at_edge(&self) -> bool {
        match self {
            Self::Persistent => false,
            Self::Shared | Self::PartialResident { .. } => true,
            Self::Streamed { double_buffered } => *double_buffered,
        }
    }
}

// Hand-written (de)serialisation: the vendored serde derive only
// supports unit and newtype enum variants. Unit variants keep the
// derive's string encoding so existing configs and goldens still parse.
impl Serialize for WeightClass {
    fn to_content(&self) -> serde::Content {
        use serde::Content;
        match self {
            Self::Persistent => Content::Str("Persistent".to_string()),
            Self::Shared => Content::Str("Shared".to_string()),
            Self::Streamed { double_buffered } => Content::Map(vec![(
                "Streamed".to_string(),
                Content::Map(vec![(
                    "double_buffered".to_string(),
                    Content::Bool(*double_buffered),
                )]),
            )]),
            Self::PartialResident {
                resident_bytes,
                total_bytes,
            } => Content::Map(vec![(
                "PartialResident".to_string(),
                Content::Map(vec![
                    ("resident_bytes".to_string(), Content::U64(*resident_bytes)),
                    ("total_bytes".to_string(), Content::U64(*total_bytes)),
                ]),
            )]),
        }
    }
}

impl Deserialize for WeightClass {
    fn from_content(c: &serde::Content) -> Result<Self, serde::Error> {
        use serde::Content;
        match c {
            Content::Str(s) if s == "Persistent" => Ok(Self::Persistent),
            Content::Str(s) if s == "Shared" => Ok(Self::Shared),
            Content::Map(entries) if entries.len() == 1 => {
                let (tag, body) = &entries[0];
                match tag.as_str() {
                    "Streamed" => Ok(Self::Streamed {
                        double_buffered: bool::from_content(&body["double_buffered"])?,
                    }),
                    "PartialResident" => Ok(Self::PartialResident {
                        resident_bytes: u64::from_content(&body["resident_bytes"])?,
                        total_bytes: u64::from_content(&body["total_bytes"])?,
                    }),
                    other => Err(serde::Error::custom(format!(
                        "unknown variant {other:?} for WeightClass"
                    ))),
                }
            }
            other => Err(serde::Error::custom(format!(
                "expected WeightClass, got {other:?}"
            ))),
        }
    }
}

/// One recorded simulation event (when `SimConfig::record_events`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimEvent {
    /// What happened.
    pub kind: EventKind,
    /// The node the event belongs to (for prefetches: the consumer).
    pub node: NodeId,
    /// Event start time, seconds.
    pub start: f64,
    /// Event end time, seconds.
    pub end: f64,
}

/// Kind of a recorded simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Array compute occupancy of a node.
    Compute,
    /// A demand transfer on a channel.
    Transfer(ChannelKind),
    /// A weight prefetch on the weight channel.
    Prefetch,
}

/// Simulation configuration.
///
/// Construct with [`SimConfig::default`] and the `with_*` builders
/// (mirroring `LcmmOptions`); the struct is `#[non_exhaustive]` so new
/// knobs can be added without breaking downstream callers.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[non_exhaustive]
pub struct SimConfig {
    /// Number of back-to-back inferences to run.
    pub inferences: usize,
    /// Whether persistent weights start loaded (steady state). With
    /// `false`, the first inference pays all cold weight loads.
    pub warm_start: bool,
    /// Sharing class per resident weight. Weights absent from the map
    /// default to [`WeightClass::Persistent`].
    pub weight_classes: HashMap<NodeId, WeightClass>,
    /// Prefetch plan: where each resident weight's (re-)load may begin.
    pub prefetch: PrefetchPlan,
    /// Record a detailed event log in the report (costs memory).
    pub record_events: bool,
    /// Model a DMA engine without cross-layer tile prefetch: each
    /// streaming layer pays its first-tile load serially before compute
    /// (`OpLatency::fill`). Off (default) = the paper's double-buffered
    /// dataflow, which hides the fill behind the previous layer.
    pub pipeline_fill: bool,
    /// Tile counts of fused-group members (`FusionPlan::tile_table`).
    /// A node mapped to `T > 1` executes its feature transfers as `T`
    /// back-to-back per-tile chunks — halo re-loads included, since the
    /// fused latency table already folds them into the input terms —
    /// instead of one whole-tensor DMA job. Totals are preserved
    /// exactly (chunks are compensated to sum to the original
    /// duration), so fused runs stay comparable to the analytic model;
    /// the per-tile granularity shows up in the event log and job
    /// counts, which is what the audit cross-checks. Weights still load
    /// once per inference: the tile loop reuses them on chip.
    pub fused_tiles: HashMap<NodeId, usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            inferences: 1,
            warm_start: true,
            weight_classes: HashMap::new(),
            prefetch: PrefetchPlan::default(),
            record_events: false,
            pipeline_fill: false,
            fused_tiles: HashMap::new(),
        }
    }
}

impl SimConfig {
    /// Returns a copy running `inferences` back-to-back inferences.
    #[must_use]
    pub fn with_inferences(mut self, inferences: usize) -> Self {
        self.inferences = inferences;
        self
    }

    /// Returns a copy with the warm-start flag set.
    #[must_use]
    pub fn with_warm_start(mut self, warm: bool) -> Self {
        self.warm_start = warm;
        self
    }

    /// Returns a copy with per-weight sharing classes.
    #[must_use]
    pub fn with_weight_classes(mut self, classes: HashMap<NodeId, WeightClass>) -> Self {
        self.weight_classes = classes;
        self
    }

    /// Returns a copy with a prefetch plan.
    #[must_use]
    pub fn with_prefetch(mut self, prefetch: PrefetchPlan) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Returns a copy with event recording toggled.
    #[must_use]
    pub fn with_record_events(mut self, record: bool) -> Self {
        self.record_events = record;
        self
    }

    /// Returns a copy with the serial first-tile fill model toggled.
    #[must_use]
    pub fn with_pipeline_fill(mut self, fill: bool) -> Self {
        self.pipeline_fill = fill;
        self
    }

    /// Returns a copy with per-node fused tile counts (see
    /// [`SimConfig::fused_tiles`]).
    #[must_use]
    pub fn with_fused_tiles(mut self, tiles: HashMap<NodeId, usize>) -> Self {
        self.fused_tiles = tiles;
        self
    }
}

/// Enqueues `duration` seconds of channel time as `tiles` back-to-back
/// chunks (the per-tile DMA jobs of a fused group member) and returns
/// the occupied spans. Chunks are compensated so they sum to exactly
/// `duration`; with `tiles <= 1` this is a single [`Channel::enqueue_span`].
fn enqueue_tiled(ch: &mut Channel, ready: f64, duration: f64, tiles: usize) -> Vec<(f64, f64)> {
    if duration <= 0.0 || tiles <= 1 {
        return vec![ch.enqueue_span(ready, duration)];
    }
    let chunk = duration / tiles as f64;
    let mut spans = Vec::with_capacity(tiles);
    let mut remaining = duration;
    for k in 0..tiles {
        let d = if k + 1 == tiles {
            remaining.max(0.0)
        } else {
            chunk
        };
        remaining -= d;
        spans.push(ch.enqueue_span(ready, d));
    }
    spans
}

/// Timing of one node in one inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeTiming {
    /// The node.
    pub id: NodeId,
    /// Time the node became eligible (previous node finished).
    pub start: f64,
    /// Time all of its compute and transfers finished.
    pub end: f64,
    /// Seconds spent stalled on transfers beyond the compute time.
    pub transfer_stall: f64,
}

impl NodeTiming {
    /// Node occupancy of the array pipeline.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The result of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Wall-clock of the whole run (all inferences).
    pub total_latency: f64,
    /// Wall-clock of one steady-state inference (the last one).
    pub steady_latency: f64,
    /// Node timings of the last inference, in schedule order.
    pub last_inference: Vec<NodeTiming>,
    /// Traffic carried per channel, seconds of channel time.
    pub channel_busy: HashMap<ChannelKind, f64>,
    /// Seconds the array stalled waiting on late weight prefetches.
    pub prefetch_stall: f64,
    /// Detailed event log (empty unless `SimConfig::record_events`).
    pub events: Vec<SimEvent>,
}

impl SimReport {
    /// Utilisation of a channel over the whole run: the *raw*
    /// busy/latency ratio. The FIFO channel model guarantees this is at
    /// most 1.0, so a larger value is a bandwidth-accounting bug —
    /// clamping used to hide exactly that, hence the `debug_assert` and
    /// the [`SimReport::oversubscribed_channels`] warning counter.
    #[must_use]
    pub fn channel_utilization(&self, kind: ChannelKind) -> f64 {
        if self.total_latency <= 0.0 {
            return 0.0;
        }
        let ratio = self.channel_busy.get(&kind).copied().unwrap_or(0.0) / self.total_latency;
        debug_assert!(
            ratio <= 1.0 + 1e-9,
            "{kind:?} carried more traffic than the run lasted: {ratio}"
        );
        ratio
    }

    /// [`SimReport::channel_utilization`] clamped to `[0, 1]` for
    /// display (the presentation layer's clamp).
    #[must_use]
    pub fn channel_utilization_clamped(&self, kind: ChannelKind) -> f64 {
        self.channel_utilization(kind).min(1.0)
    }

    /// Warning counter: how many channels report a raw utilisation
    /// above 1.0 (always 0 unless the accounting is broken).
    #[must_use]
    pub fn oversubscribed_channels(&self) -> usize {
        [
            ChannelKind::InputFeature,
            ChannelKind::Weight,
            ChannelKind::OutputFeature,
        ]
        .into_iter()
        .filter(|&kind| {
            self.total_latency > 0.0
                && self.channel_busy.get(&kind).copied().unwrap_or(0.0)
                    > self.total_latency * (1.0 + 1e-9)
        })
        .count()
    }
}

/// The simulator: executes a graph's schedule against shared DMA
/// channels.
#[derive(Debug)]
pub struct Simulator<'a> {
    graph: &'a Graph,
    profile: &'a GraphProfile,
    schedule: Schedule,
}

impl<'a> Simulator<'a> {
    /// The graph being simulated.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for one graph/latency-table pair.
    #[must_use]
    pub fn new(graph: &'a Graph, profile: &'a GraphProfile) -> Self {
        Self {
            graph,
            profile,
            schedule: Schedule::new(graph),
        }
    }

    /// The schedule being executed.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Runs `config.inferences` back-to-back inferences under
    /// `residency`.
    #[must_use]
    pub fn run(&self, residency: &Residency, config: &SimConfig) -> SimReport {
        let mut if_ch = Channel::new();
        let mut wt_ch = Channel::new();
        let mut of_ch = Channel::new();
        let mut prefetch_stall = 0.0;
        let mut events: Vec<SimEvent> = Vec::new();
        let mut t = 0.0f64;
        let mut steady_latency = 0.0;
        let mut last_inference = Vec::new();

        let class_of = |node: &NodeId| {
            config
                .weight_classes
                .get(node)
                .copied()
                .unwrap_or(WeightClass::Persistent)
        };

        // Re-streaming weights the plan has no edge for. These cannot
        // have been loaded ahead of time, so they demand-load their
        // streamed fraction at their consumer (full stall). They used
        // to default to a launch at position 0, which simulated a
        // broken or missing plan as perfectly hidden. An entirely empty
        // plan is a legitimate "no prefetching" configuration, and a
        // single-buffered stream never uses an edge; a *partial* plan
        // that skips an edge-launching weight is a planning bug, hence
        // the assert.
        let mut demand_fraction: HashMap<NodeId, f64> = HashMap::new();
        let mut unplanned: HashSet<NodeId> = HashSet::new();
        for v in residency.iter() {
            let ValueId::Weight(node) = v else { continue };
            let class = class_of(node);
            let f = class.steady_fraction();
            if f <= 0.0 {
                continue;
            }
            if !class.launches_at_edge() {
                demand_fraction.insert(*node, f);
            } else if config.prefetch.edge(*v).is_none() {
                unplanned.insert(*node);
                demand_fraction.insert(*node, f);
            }
        }
        debug_assert!(
            config.prefetch.is_empty() || unplanned.is_empty(),
            "prefetch plan misses shared weights: {unplanned:?}"
        );

        // Cold start: persistent weights (and the resident slices of
        // partially resident ones) stream in before the first inference
        // begins.
        if !config.warm_start {
            for v in residency.iter() {
                if let ValueId::Weight(node) = v {
                    let resident = class_of(node).resident_fraction();
                    if resident > 0.0 {
                        t = t.max(wt_ch.enqueue(0.0, self.profile.node(*node).weight * resident));
                    }
                }
            }
        }

        for _inference in 0..config.inferences.max(1) {
            let infer_start = t;
            let mut timings = Vec::with_capacity(self.schedule.len());
            // Completion time of each shared-weight prefetch this
            // inference.
            let mut prefetch_done: HashMap<NodeId, f64> = HashMap::new();
            // Prefetches indexed by launch position: `(node, seconds)`
            // of the streamed fraction.
            let mut launches: HashMap<usize, Vec<(NodeId, f64)>> = HashMap::new();
            for v in residency.iter() {
                if let ValueId::Weight(node) = v {
                    let class = class_of(node);
                    let f = class.steady_fraction();
                    if f > 0.0 && class.launches_at_edge() {
                        // Only planned streams launch; a re-streaming
                        // weight without an edge demand-loads at its
                        // consumer instead (see `demand_fraction`).
                        if let Some(e) = config.prefetch.edge(*v) {
                            launches
                                .entry(e.start)
                                .or_default()
                                .push((*node, self.profile.node(*node).weight * f));
                        }
                    }
                }
            }

            for pos in 0..self.schedule.len() {
                let id = self.schedule.at(pos);
                // Launch prefetches tied to this position (FIFO on the
                // weight channel, behind whatever is already queued).
                if let Some(nodes) = launches.get(&pos) {
                    let mut nodes = nodes.clone();
                    nodes.sort_by_key(|a| a.0); // deterministic order
                    for (n, seconds) in nodes {
                        let (ps, done) = wt_ch.enqueue_span(t, seconds);
                        if config.record_events && done > ps {
                            events.push(SimEvent {
                                kind: EventKind::Prefetch,
                                node: n,
                                start: ps,
                                end: done,
                            });
                        }
                        prefetch_done.insert(n, done);
                    }
                }

                let row = self.profile.node(id);
                let start = t;
                let tiles = config.fused_tiles.get(&id).copied().unwrap_or(1).max(1);

                let if_dur: f64 = row
                    .inputs
                    .iter()
                    .filter(|(src, _)| !residency.contains(ValueId::Feature(*src)))
                    .map(|(_, d)| *d)
                    .sum();
                let if_spans = enqueue_tiled(&mut if_ch, start, if_dur, tiles);
                let end_if = if_spans.last().expect("at least one span").1;

                let of_dur = if residency.contains(ValueId::Feature(id)) {
                    0.0
                } else {
                    row.output
                };
                let of_spans = enqueue_tiled(&mut of_ch, start, of_dur, tiles);
                let end_of = of_spans.last().expect("at least one span").1;

                let mut wt_span: Option<(f64, f64)> = None;
                let end_wt = if residency.contains(ValueId::Weight(id)) {
                    match (prefetch_done.get(&id), demand_fraction.get(&id)) {
                        (Some(&done), _) => done, // may stall if late
                        // Re-streaming but never launched ahead (no
                        // edge, or single-buffered): the streamed
                        // fraction loads on demand and stalls in full.
                        (None, Some(&f)) => {
                            let span = wt_ch.enqueue_span(start, row.weight * f);
                            wt_span = Some(span);
                            span.1
                        }
                        (None, None) => start, // persistent, already loaded
                    }
                } else {
                    let span = wt_ch.enqueue_span(start, row.weight);
                    wt_span = Some(span);
                    span.1
                };
                if config.record_events {
                    if row.compute > 0.0 {
                        events.push(SimEvent {
                            kind: EventKind::Compute,
                            node: id,
                            start,
                            end: start + row.compute,
                        });
                    }
                    for (if_s, if_e) in &if_spans {
                        if if_e > if_s {
                            events.push(SimEvent {
                                kind: EventKind::Transfer(ChannelKind::InputFeature),
                                node: id,
                                start: *if_s,
                                end: *if_e,
                            });
                        }
                    }
                    for (of_s, of_e) in &of_spans {
                        if of_e > of_s {
                            events.push(SimEvent {
                                kind: EventKind::Transfer(ChannelKind::OutputFeature),
                                node: id,
                                start: *of_s,
                                end: *of_e,
                            });
                        }
                    }
                    if let Some((ws, we)) = wt_span {
                        if we > ws {
                            events.push(SimEvent {
                                kind: EventKind::Transfer(ChannelKind::Weight),
                                node: id,
                                start: ws,
                                end: we,
                            });
                        }
                    }
                }

                let streams =
                    if_dur > 0.0 || (!residency.contains(ValueId::Weight(id)) && row.weight > 0.0);
                let fill = if config.pipeline_fill && streams {
                    row.fill
                } else {
                    0.0
                };
                let compute_end = start + fill + row.compute;
                let end = compute_end.max(end_if).max(end_wt).max(end_of);
                if let Some(&done) = prefetch_done.get(&id) {
                    prefetch_stall += (done - compute_end).max(0.0).min(end - compute_end);
                }
                timings.push(NodeTiming {
                    id,
                    start,
                    end,
                    transfer_stall: end - compute_end,
                });
                t = end;
            }
            steady_latency = t - infer_start;
            last_inference = timings;
        }

        let mut channel_busy = HashMap::new();
        channel_busy.insert(ChannelKind::InputFeature, if_ch.busy_total());
        channel_busy.insert(ChannelKind::Weight, wt_ch.busy_total());
        channel_busy.insert(ChannelKind::OutputFeature, of_ch.busy_total());

        SimReport {
            total_latency: t,
            steady_latency,
            last_inference,
            channel_busy,
            prefetch_stall,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcmm_core::pipeline::compare;
    use lcmm_fpga::{AccelDesign, Device, Precision};
    use lcmm_graph::zoo;

    fn setup(graph: &Graph, p: Precision) -> GraphProfile {
        AccelDesign::explore(graph, &Device::vu9p(), p).profile(graph)
    }

    #[test]
    fn umm_sim_close_to_analytic_sum() {
        // With empty residency there is no prefetch traffic; the only
        // divergence from the analytic per-layer max model is channel
        // queueing across consecutive layers.
        let g = zoo::alexnet();
        let p = setup(&g, Precision::Fix16);
        let sim = Simulator::new(&g, &p);
        let report = sim.run(&Residency::new(), &SimConfig::default());
        let analytic = p.total_latency();
        let ratio = report.total_latency / analytic;
        assert!((0.99..1.5).contains(&ratio), "sim/analytic = {ratio}");
    }

    #[test]
    fn residency_reduces_sim_latency() {
        let g = zoo::googlenet();
        let device = Device::vu9p();
        let (umm, lcmm) = compare(&g, &device, Precision::Fix16);
        let sim_umm =
            Simulator::new(&g, &umm.profile).run(&Residency::new(), &SimConfig::default());
        let lcmm_profile = lcmm.design.profile(&g);
        let config = SimConfig {
            prefetch: lcmm.prefetch.clone(),
            ..SimConfig::default()
        };
        let sim_lcmm = Simulator::new(&g, &lcmm_profile).run(&lcmm.residency, &config);
        assert!(
            sim_lcmm.total_latency < sim_umm.total_latency,
            "lcmm {} >= umm {}",
            sim_lcmm.total_latency,
            sim_umm.total_latency
        );
    }

    #[test]
    fn multiple_inferences_accumulate() {
        let g = zoo::alexnet();
        let p = setup(&g, Precision::Fix16);
        let sim = Simulator::new(&g, &p);
        let one = sim.run(&Residency::new(), &SimConfig::default());
        let three = sim.run(
            &Residency::new(),
            &SimConfig {
                inferences: 3,
                ..SimConfig::default()
            },
        );
        assert!(three.total_latency > 2.9 * one.total_latency);
        assert!((three.steady_latency - one.steady_latency).abs() / one.steady_latency < 0.01);
    }

    #[test]
    fn cold_start_pays_persistent_loads() {
        let g = zoo::alexnet();
        let p = setup(&g, Precision::Fix16);
        let sim = Simulator::new(&g, &p);
        let mut residency = Residency::new();
        let fc6 = g.node_by_name("fc6").unwrap().id();
        residency.insert(ValueId::Weight(fc6));
        let warm = sim.run(&residency, &SimConfig::default());
        let cold = sim.run(
            &residency,
            &SimConfig {
                warm_start: false,
                ..SimConfig::default()
            },
        );
        assert!(cold.total_latency > warm.total_latency);
    }

    #[test]
    fn shared_weights_cost_traffic_every_inference() {
        let g = zoo::alexnet();
        let p = setup(&g, Precision::Fix16);
        let sim = Simulator::new(&g, &p);
        let fc7 = g.node_by_name("fc7").unwrap().id();
        let mut residency = Residency::new();
        residency.insert(ValueId::Weight(fc7));
        let persistent = sim.run(&residency, &SimConfig::default());
        let mut classes = HashMap::new();
        classes.insert(fc7, WeightClass::Shared);
        let shared = sim.run(
            &residency,
            &SimConfig {
                weight_classes: classes,
                ..SimConfig::default()
            },
        );
        let p_wt = persistent.channel_busy[&ChannelKind::Weight];
        let s_wt = shared.channel_busy[&ChannelKind::Weight];
        assert!(
            s_wt > p_wt,
            "shared weights must re-stream: {s_wt} <= {p_wt}"
        );
    }

    #[test]
    fn weight_class_round_trips_through_serde() {
        for class in [
            WeightClass::Persistent,
            WeightClass::Shared,
            WeightClass::Streamed {
                double_buffered: true,
            },
            WeightClass::Streamed {
                double_buffered: false,
            },
            WeightClass::PartialResident {
                resident_bytes: 18 << 10,
                total_bytes: 1 << 20,
            },
        ] {
            let back = WeightClass::from_content(&class.to_content()).expect("round trip");
            assert_eq!(class, back);
        }
        // The unit variants keep the derive's string encoding.
        assert_eq!(
            WeightClass::Persistent.to_content(),
            serde::Content::Str("Persistent".to_string())
        );
    }

    #[test]
    fn streamed_weights_restream_every_inference() {
        use lcmm_core::prefetch::PrefetchPlan;
        use lcmm_core::{Evaluator, ValueTable};

        let g = zoo::alexnet();
        let p = setup(&g, Precision::Fix16);
        let values = ValueTable::build(&g, &p, Precision::Fix16);
        let ev = Evaluator::new(&g, &p);
        let sim = Simulator::new(&g, &p);
        let plan = PrefetchPlan::build(
            &ev,
            sim.schedule(),
            &Residency::new(),
            values.weight_candidates(),
        );
        let fc7 = g.node_by_name("fc7").unwrap().id();
        let mut residency = Residency::new();
        residency.insert(ValueId::Weight(fc7));
        let steady = |class| {
            let mut classes = HashMap::new();
            classes.insert(fc7, class);
            sim.run(
                &residency,
                &SimConfig {
                    inferences: 2,
                    weight_classes: classes,
                    prefetch: plan.clone(),
                    ..SimConfig::default()
                },
            )
        };
        let persistent = steady(WeightClass::Persistent);
        let streamed = steady(WeightClass::Streamed {
            double_buffered: true,
        });
        let demand = steady(WeightClass::Streamed {
            double_buffered: false,
        });
        let p_wt = persistent.channel_busy[&ChannelKind::Weight];
        let s_wt = streamed.channel_busy[&ChannelKind::Weight];
        assert!(
            s_wt > p_wt,
            "streamed weight must re-stream: {s_wt} <= {p_wt}"
        );
        // The double-buffered stream overlaps compute via its edge; the
        // single-buffered one stalls the consumer in full.
        assert!(streamed.steady_latency <= demand.steady_latency + 1e-12);
        assert!(persistent.steady_latency <= streamed.steady_latency + 1e-12);
    }

    #[test]
    fn partial_residency_streams_only_the_tail() {
        use lcmm_core::prefetch::PrefetchPlan;
        use lcmm_core::{Evaluator, ValueTable};

        let g = zoo::alexnet();
        let p = setup(&g, Precision::Fix16);
        let values = ValueTable::build(&g, &p, Precision::Fix16);
        let ev = Evaluator::new(&g, &p);
        let sim = Simulator::new(&g, &p);
        let plan = PrefetchPlan::build(
            &ev,
            sim.schedule(),
            &Residency::new(),
            values.weight_candidates(),
        );
        let fc6 = g.node_by_name("fc6").unwrap().id();
        let mut residency = Residency::new();
        residency.insert(ValueId::Weight(fc6));
        let busy = |class| {
            let mut classes = HashMap::new();
            classes.insert(fc6, class);
            let report = sim.run(
                &residency,
                &SimConfig {
                    inferences: 2,
                    weight_classes: classes,
                    prefetch: plan.clone(),
                    ..SimConfig::default()
                },
            );
            report.channel_busy[&ChannelKind::Weight]
        };
        let full = busy(WeightClass::Streamed {
            double_buffered: true,
        });
        let half = busy(WeightClass::PartialResident {
            resident_bytes: 1 << 20,
            total_bytes: 2 << 20,
        });
        let none = busy(WeightClass::Persistent);
        assert!(
            none < half && half < full,
            "partial residency must stream the non-resident tail only: {none} / {half} / {full}"
        );
        // Cold start pays exactly the resident slice.
        let mut classes = HashMap::new();
        classes.insert(
            fc6,
            WeightClass::PartialResident {
                resident_bytes: 1 << 20,
                total_bytes: 2 << 20,
            },
        );
        let cold = sim.run(
            &residency,
            &SimConfig {
                warm_start: false,
                weight_classes: classes.clone(),
                prefetch: plan.clone(),
                ..SimConfig::default()
            },
        );
        let warm = sim.run(
            &residency,
            &SimConfig {
                weight_classes: classes,
                prefetch: plan,
                ..SimConfig::default()
            },
        );
        assert!(
            cold.total_latency > warm.total_latency,
            "cold start must pay the resident slice: {} <= {}",
            cold.total_latency,
            warm.total_latency
        );
    }

    #[test]
    fn empty_plan_does_not_beat_umm_weight_timing() {
        // Regression: a Shared weight with no prefetch edge used to
        // launch at position 0, so an empty plan simulated as almost
        // perfectly hidden. With the demand-load semantics, making
        // every weight resident-but-shared under an empty plan buys
        // nothing over streaming them from DRAM like UMM does.
        let g = zoo::vgg16();
        let p = setup(&g, Precision::Fix16);
        let sim = Simulator::new(&g, &p);
        let steady = SimConfig {
            inferences: 2,
            ..SimConfig::default()
        };
        let umm = sim.run(&Residency::new(), &steady);
        let mut residency = Residency::new();
        let mut classes = HashMap::new();
        for n in g.compute_layers() {
            if p.node(n.id()).weight > 0.0 {
                residency.insert(ValueId::Weight(n.id()));
                classes.insert(n.id(), WeightClass::Shared);
            }
        }
        let no_plan = sim.run(
            &residency,
            &SimConfig {
                inferences: 2,
                weight_classes: classes,
                ..SimConfig::default()
            },
        );
        assert!(
            no_plan.steady_latency >= 0.99 * umm.steady_latency,
            "empty plan must demand-load: {} < {}",
            no_plan.steady_latency,
            umm.steady_latency
        );
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug_assert only")]
    #[should_panic(expected = "prefetch plan misses shared weights")]
    fn partial_plan_missing_a_shared_weight_asserts() {
        use lcmm_core::prefetch::PrefetchPlan;
        use lcmm_core::{Evaluator, ValueTable};

        let g = zoo::alexnet();
        let p = setup(&g, Precision::Fix16);
        let values = ValueTable::build(&g, &p, Precision::Fix16);
        let ev = Evaluator::new(&g, &p);
        let sim = Simulator::new(&g, &p);
        // A plan that covers only the first weight candidate.
        let first = values
            .weight_candidates()
            .next()
            .expect("alexnet has weights")
            .clone();
        let plan = PrefetchPlan::build(
            &ev,
            sim.schedule(),
            &Residency::new(),
            std::iter::once(&first),
        );
        assert!(!plan.is_empty());
        // Two shared weights, one of them unknown to the plan.
        let fc6 = g.node_by_name("fc6").unwrap().id();
        let mut residency = Residency::new();
        residency.insert(ValueId::Weight(first.id.node()));
        residency.insert(ValueId::Weight(fc6));
        let mut classes = HashMap::new();
        classes.insert(first.id.node(), WeightClass::Shared);
        classes.insert(fc6, WeightClass::Shared);
        let _ = sim.run(
            &residency,
            &SimConfig {
                weight_classes: classes,
                prefetch: plan,
                ..SimConfig::default()
            },
        );
    }

    #[test]
    fn node_timings_are_monotone() {
        let g = zoo::googlenet();
        let p = setup(&g, Precision::Fix16);
        let sim = Simulator::new(&g, &p);
        let report = sim.run(&Residency::new(), &SimConfig::default());
        let mut last_end = 0.0;
        for t in &report.last_inference {
            assert!(t.start >= last_end - 1e-12);
            assert!(t.end >= t.start);
            assert!(t.transfer_stall >= -1e-12);
            last_end = t.end;
        }
        assert_eq!(report.last_inference.len(), g.len());
    }

    #[test]
    fn event_log_is_consistent() {
        let g = zoo::googlenet();
        let p = setup(&g, Precision::Fix16);
        let sim = Simulator::new(&g, &p);
        let config = SimConfig {
            record_events: true,
            ..SimConfig::default()
        };
        let report = sim.run(&Residency::new(), &config);
        assert!(!report.events.is_empty());

        // Per-channel transfer events never overlap (FIFO channels).
        for kind in [
            ChannelKind::InputFeature,
            ChannelKind::Weight,
            ChannelKind::OutputFeature,
        ] {
            let mut spans: Vec<(f64, f64)> = report
                .events
                .iter()
                .filter(|e| e.kind == EventKind::Transfer(kind))
                .map(|e| (e.start, e.end))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in spans.windows(2) {
                assert!(w[1].0 >= w[0].1 - 1e-12, "{kind:?} events overlap: {w:?}");
            }
            // Total event time equals the channel busy accounting.
            let total: f64 = spans.iter().map(|(s, e)| e - s).sum();
            assert!((total - report.channel_busy[&kind]).abs() < 1e-9);
        }

        // Compute events are sequential (one array).
        let mut compute: Vec<(f64, f64)> = report
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Compute)
            .map(|e| (e.start, e.end))
            .collect();
        compute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in compute.windows(2) {
            assert!(w[1].0 >= w[0].1 - 1e-12, "compute events overlap");
        }
    }

    #[test]
    fn pipeline_fill_adds_bounded_overhead() {
        let g = zoo::inception_v4();
        let p = setup(&g, Precision::Fix16);
        let sim = Simulator::new(&g, &p);
        let base = sim.run(&Residency::new(), &SimConfig::default());
        let filled = sim.run(
            &Residency::new(),
            &SimConfig {
                pipeline_fill: true,
                ..SimConfig::default()
            },
        );
        assert!(filled.total_latency > base.total_latency);
        // Removing the cross-layer double buffer costs real time, but
        // bounded by one extra serial pass of the streams.
        let overhead = filled.total_latency / base.total_latency - 1.0;
        assert!(overhead < 0.60, "fill overhead {overhead:.3} implausible");
    }

    #[test]
    fn residency_reduces_fill_exposure() {
        // Fully resident layers stream nothing, so the no-prefetch DMA
        // penalty shrinks as LCMM puts tensors on chip.
        let g = zoo::googlenet();
        let device = Device::vu9p();
        let (_, lcmm) = compare(&g, &device, Precision::Fix16);
        let profile = lcmm.design.profile(&g);
        let sim = Simulator::new(&g, &profile);
        let cfg = SimConfig {
            pipeline_fill: true,
            ..SimConfig::default()
        };
        let umm_filled = sim.run(&Residency::new(), &cfg);
        let lcmm_cfg = SimConfig {
            pipeline_fill: true,
            prefetch: lcmm.prefetch.clone(),
            weight_classes: crate::validate::weight_classes(&lcmm),
            ..SimConfig::default()
        };
        let lcmm_filled = sim.run(&lcmm.residency, &lcmm_cfg);
        let umm_plain = sim.run(&Residency::new(), &SimConfig::default());
        let lcmm_plain = sim.run(
            &lcmm.residency,
            &SimConfig {
                prefetch: lcmm.prefetch.clone(),
                weight_classes: crate::validate::weight_classes(&lcmm),
                ..SimConfig::default()
            },
        );
        let umm_overhead = umm_filled.total_latency - umm_plain.total_latency;
        let lcmm_overhead = lcmm_filled.total_latency - lcmm_plain.total_latency;
        // Noteworthy asymmetry: under UMM the fill hides beneath the
        // dominant transfer term of memory-bound layers, while LCMM —
        // having removed those transfers — exposes it on top of pure
        // compute. Both must stay small, and LCMM must still win
        // end-to-end even without cross-layer prefetch.
        // Bounded by one fully serial pass of the streams (<= 2x).
        assert!(umm_overhead / umm_plain.total_latency < 1.0);
        assert!(lcmm_overhead / lcmm_plain.total_latency < 1.0);
        assert!(umm_overhead > 0.0 && lcmm_overhead > 0.0);
        assert!(lcmm_filled.total_latency < umm_filled.total_latency);
    }

    #[test]
    fn fused_tiles_preserve_totals_and_split_events() {
        // The tile loop splits feature DMA into per-tile chunks but is
        // compensated to carry exactly the same traffic, so totals stay
        // bit-comparable with the analytic model the plan was costed
        // against.
        let g = zoo::alexnet();
        let p = setup(&g, Precision::Fix16);
        let sim = Simulator::new(&g, &p);
        let conv2 = g.node_by_name("conv2").unwrap().id();
        let base = sim.run(
            &Residency::new(),
            &SimConfig::default().with_record_events(true),
        );
        let mut tiles = HashMap::new();
        tiles.insert(conv2, 8usize);
        let tiled = sim.run(
            &Residency::new(),
            &SimConfig::default()
                .with_record_events(true)
                .with_fused_tiles(tiles),
        );
        assert!((tiled.total_latency - base.total_latency).abs() < 1e-9);
        for kind in [
            ChannelKind::InputFeature,
            ChannelKind::Weight,
            ChannelKind::OutputFeature,
        ] {
            assert!((tiled.channel_busy[&kind] - base.channel_busy[&kind]).abs() < 1e-9);
        }
        // Per-tile granularity shows up as 8 input-feature chunks for
        // the tiled node instead of one whole-tensor job.
        let chunks = |r: &SimReport| {
            r.events
                .iter()
                .filter(|e| {
                    e.node == conv2 && e.kind == EventKind::Transfer(ChannelKind::InputFeature)
                })
                .count()
        };
        assert_eq!(chunks(&base), 1);
        assert_eq!(chunks(&tiled), 8);
    }

    #[test]
    fn fused_tiles_keep_event_log_consistent() {
        let g = zoo::resnet50();
        let p = setup(&g, Precision::Fix16);
        let sim = Simulator::new(&g, &p);
        let mut tiles = HashMap::new();
        for n in g.compute_layers().take(6) {
            tiles.insert(n.id(), 4usize);
        }
        let report = sim.run(
            &Residency::new(),
            &SimConfig::default()
                .with_record_events(true)
                .with_fused_tiles(tiles),
        );
        for kind in [ChannelKind::InputFeature, ChannelKind::OutputFeature] {
            let mut spans: Vec<(f64, f64)> = report
                .events
                .iter()
                .filter(|e| e.kind == EventKind::Transfer(kind))
                .map(|e| (e.start, e.end))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in spans.windows(2) {
                assert!(w[1].0 >= w[0].1 - 1e-12, "{kind:?} tile chunks overlap");
            }
            let total: f64 = spans.iter().map(|(s, e)| e - s).sum();
            assert!((total - report.channel_busy[&kind]).abs() < 1e-9);
        }
    }

    #[test]
    fn events_empty_when_not_recording() {
        let g = zoo::alexnet();
        let p = setup(&g, Precision::Fix16);
        let report = Simulator::new(&g, &p).run(&Residency::new(), &SimConfig::default());
        assert!(report.events.is_empty());
    }

    #[test]
    fn prefetch_events_precede_use() {
        let g = zoo::resnet50();
        let device = Device::vu9p();
        let (_, lcmm) = compare(&g, &device, Precision::Fix16);
        let profile = lcmm.design.profile(&g);
        let sim = Simulator::new(&g, &profile);
        let config = SimConfig {
            record_events: true,
            weight_classes: crate::validate::weight_classes(&lcmm),
            prefetch: lcmm.prefetch.clone(),
            ..SimConfig::default()
        };
        let report = sim.run(&lcmm.residency, &config);
        let schedule = sim.schedule();
        for e in report
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Prefetch)
        {
            // The prefetch must start no later than its consumer ends.
            let pos = schedule.position(e.node);
            let consumer = report.last_inference[pos];
            assert!(e.start <= consumer.end + 1e-12);
        }
    }

    #[test]
    fn channel_utilization_bounded() {
        let g = zoo::vgg16();
        let p = setup(&g, Precision::Fix8);
        let sim = Simulator::new(&g, &p);
        let report = sim.run(&Residency::new(), &SimConfig::default());
        for kind in [
            ChannelKind::InputFeature,
            ChannelKind::Weight,
            ChannelKind::OutputFeature,
        ] {
            let u = report.channel_utilization(kind);
            assert!((0.0..=1.0).contains(&u), "{kind:?} = {u}");
            assert_eq!(u, report.channel_utilization_clamped(kind));
        }
        assert_eq!(report.oversubscribed_channels(), 0);
    }
}
