//! Cycle-approximate event-driven simulator for LCMM accelerator
//! schedules.
//!
//! The analytic model in `lcmm-fpga`/`lcmm-core` scores each layer as
//! `max(compute, transfers)` in isolation. This simulator executes the
//! whole schedule against *shared* DMA channels: demand streams and
//! weight prefetches queue FIFO on the three tensor interfaces, so
//! contention, prefetch timing and cold-start effects emerge instead of
//! being assumed. It is the reproduction's stand-in for running the
//! bitstream, and `validate` quantifies how far the analytic model
//! drifts from it.
//!
//! # Quick tour
//!
//! ```
//! use lcmm_core::Residency;
//! use lcmm_fpga::{AccelDesign, Device, Precision};
//! use lcmm_sim::{SimConfig, Simulator};
//!
//! let graph = lcmm_graph::zoo::alexnet();
//! let design = AccelDesign::explore(&graph, &Device::vu9p(), Precision::Fix16);
//! let profile = design.profile(&graph);
//! let sim = Simulator::new(&graph, &profile);
//! let report = sim.run(&Residency::new(), &SimConfig::default());
//! assert!(report.total_latency > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
mod channel;
pub mod contention;
pub mod dram;
mod engine;
pub mod trace;
pub mod validate;

pub use channel::{Channel, ChannelKind};
pub use contention::{cross_tenant_contention, tenant_load, ContentionReport, TenantLoad};
pub use engine::{EventKind, NodeTiming, SimConfig, SimEvent, SimReport, Simulator, WeightClass};
