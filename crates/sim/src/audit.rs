//! Differential audit: cross-checks the analytic evaluator against the
//! event-driven simulator and verifies structural invariants of LCMM
//! results over a grid of models, precisions and allocators.
//!
//! The analytic model (Eq. 1) and the simulator evolve independently,
//! so they drift apart silently: a missing prefetch launch makes the
//! simulator optimistic, a stale exposure makes the evaluator
//! pessimistic, and both bugs hide inside "the models just disagree a
//! bit". The audit pins the relationship down:
//!
//! * **Structural invariants** — the allocation fits the SRAM budget,
//!   co-located buffer members never overlap in time, every prefetch
//!   edge launches strictly before its consumer (or is exposed at the
//!   graph head), and recorded exposure never exceeds the weight load.
//! * **Differential checks** — `simulated / analytic` must sit inside a
//!   per-configuration tolerance band; a violation is *classified*
//!   ([`DivergenceClass`]) so the failure says which mechanism drifted,
//!   not just that something did.
//! * **Shrinking** — a failing seeded random graph is minimised in
//!   generator space (delete-node / narrow / halve-tensor passes over
//!   `zoo::synthetic_scaled` parameters) into a [`ReproSpec`] small
//!   enough to debug, and the spec is written under `checks/repros/`
//!   so CI replays the corpus forever.

use crate::engine::{SimConfig, SimReport, Simulator, WeightClass};
use crate::validate::{effective_profile, fused_tiles, weight_classes};
use lcmm_core::liveness::{feature_lifespans, LiveInterval, Schedule};
use lcmm_core::pipeline::{AllocatorKind, LcmmOptions};
use lcmm_core::{
    Evaluator, FusionMode, LcmmResult, PlanRequest, Residency, StreamingMode, UmmBaseline, ValueId,
    ValueTable, WeightMode,
};
use lcmm_fpga::{Device, Precision};
use lcmm_graph::{zoo, Graph};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Per-class tolerance bands on the `simulated / analytic` ratio.
///
/// The simulator models contention the analytic model assumes away, so
/// it may only be *slower* (ratio ≥ ~1); how much slower depends on
/// what the run exercises. The bands are deliberately loose — they
/// catch mechanism bugs (a free prefetch, double-counted traffic), not
/// model refinements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToleranceBands {
    /// Lower bound on every ratio: below this the simulator finished
    /// work the analytic model says must be paid for.
    pub floor: f64,
    /// Upper bound for UMM runs, where only channel FIFO contention
    /// separates the models.
    pub umm_ceiling: f64,
    /// Upper bound for full LCMM runs, which add prefetch timing.
    pub lcmm_ceiling: f64,
    /// Upper bound with `pipeline_fill`, which adds fill overhead.
    pub fill_ceiling: f64,
    /// Lower bound for the missing-plan probe (see [`audit_case`]):
    /// with an empty plan and every resident weight demand-loaded, the
    /// simulator cannot beat the analytic demand-load floor.
    pub probe_floor: f64,
    /// Upper bound for the missing-plan probe. Demand loads enqueue at
    /// their consumers, exactly what the analytic floor assumes, so
    /// the probe tracks the floor tightly; a simulator that *moves*
    /// unplanned loads (e.g. launching them at the schedule head)
    /// displaces the channel FIFO and drifts well above it.
    pub probe_ceiling: f64,
}

impl Default for ToleranceBands {
    fn default() -> Self {
        Self {
            floor: 0.98,
            umm_ceiling: 1.5,
            lcmm_ceiling: 1.65,
            fill_ceiling: 2.3,
            probe_floor: 0.95,
            probe_ceiling: 1.1,
        }
    }
}

/// Which divergence mechanism a failed differential check points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DivergenceClass {
    /// Prefetch launches/stalls disagree with the plan's exposure
    /// accounting (e.g. a weight loaded earlier or later than planned).
    PrefetchTiming,
    /// Channel FIFO contention diverges from the per-layer max model.
    ChannelContention,
    /// Pipeline fill overhead outside its expected bound.
    Fill,
}

impl fmt::Display for DivergenceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::PrefetchTiming => "prefetch-timing",
            Self::ChannelContention => "channel-contention",
            Self::Fill => "fill",
        })
    }
}

/// One audit failure: an invariant violation or a classified
/// divergence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Finding {
    /// Which check failed, e.g. `invariant/budget` or
    /// `divergence/prefetch-timing`.
    pub check: String,
    /// The divergence mechanism, when the check is differential.
    pub class: Option<DivergenceClass>,
    /// Human-readable detail with the offending numbers.
    pub message: String,
}

impl Finding {
    fn invariant(which: &str, message: String) -> Self {
        Self {
            check: format!("invariant/{which}"),
            class: None,
            message,
        }
    }

    fn divergence(class: DivergenceClass, message: String) -> Self {
        Self {
            check: format!("divergence/{class}"),
            class: Some(class),
            message,
        }
    }
}

/// One analytic-vs-simulated measurement inside a case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CasePoint {
    /// Which run: `umm`, `lcmm`, `lcmm+fill` or `no-plan-probe`.
    pub label: String,
    /// Analytic latency, seconds.
    pub analytic: f64,
    /// Simulated steady-state latency, seconds.
    pub simulated: f64,
}

impl CasePoint {
    /// `simulated / analytic`.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.simulated / self.analytic
    }
}

/// The audit outcome for one `(model, precision, allocator)` cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseReport {
    /// Model name as accepted by `zoo::by_name`.
    pub model: String,
    /// Arithmetic precision of the run.
    pub precision: Precision,
    /// Allocator used for the knapsack stage.
    pub allocator: AllocatorKind,
    /// All differential measurements taken.
    pub points: Vec<CasePoint>,
    /// Everything that failed; empty means the cell is clean.
    pub findings: Vec<Finding>,
}

impl CaseReport {
    /// Whether every check passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs the full audit for one model: LCMM pipeline, structural
/// invariants, then four differential measurements.
///
/// The fourth measurement is the *missing-plan probe*: the LCMM
/// residency is re-simulated with an **empty** prefetch plan and every
/// resident weight marked [`WeightClass::Shared`]. Nothing can be
/// preloaded, so the steady state must not dip below the analytic
/// demand-load floor (features resident, all weights streamed at
/// their consumers). A simulator that quietly launches unplanned
/// prefetches "for free" fails exactly here, classified
/// [`DivergenceClass::PrefetchTiming`].
#[must_use]
pub fn audit_case(
    graph: &Graph,
    precision: Precision,
    allocator: AllocatorKind,
    bands: &ToleranceBands,
) -> CaseReport {
    let options = LcmmOptions::default().with_allocator(allocator);
    audit_case_with_options(graph, precision, &options, bands)
}

/// [`audit_case`] under explicit pipeline options, so the audit can
/// exercise non-default configurations — a clamped `tensor_budget`, a
/// weight-streaming mode — with the same invariants and differential
/// bands as the default flow.
#[must_use]
pub fn audit_case_with_options(
    graph: &Graph,
    precision: Precision,
    options: &LcmmOptions,
    bands: &ToleranceBands,
) -> CaseReport {
    let device = Device::vu9p();
    let umm = UmmBaseline::build(graph, &device, precision);
    let result = PlanRequest::new(graph, &device, precision)
        .options(*options)
        .with_design(umm.design.clone())
        .run()
        .expect("an explored design is always feasible");
    // The table the plan was scored against: fused plans are simulated
    // and cross-checked on the fused table (interior transfers
    // eliminated, halo re-loads and recomputation folded in), so the
    // differential bands compare like with like. Identity when nothing
    // fused.
    let profile = effective_profile(graph, &result);
    let schedule = Schedule::new(graph);

    // The budget the knapsack actually planned against: an explicit
    // tensor budget is clamped to the design's own.
    let design_budget = result.design.tensor_sram_budget();
    let budget = options
        .tensor_budget
        .map_or(design_budget, |b| b.min(design_budget));

    let mut findings = Vec::new();
    check_invariants(graph, &result, &profile, &schedule, budget, &mut findings);

    let mut points = Vec::new();

    // UMM: empty residency against the UMM profile. Only channel
    // contention separates the models here.
    let umm_sim = Simulator::new(graph, &umm.profile).run(&Residency::new(), &SimConfig::default());
    diff_point(
        &mut points,
        &mut findings,
        "umm",
        umm.latency,
        &umm_sim,
        (bands.floor, bands.umm_ceiling),
        false,
    );

    // Full LCMM: the pipeline's own residency, plan and classes.
    let sim = Simulator::new(graph, &profile);
    let lcmm_config = SimConfig::default()
        .with_inferences(2) // steady state after the first pass
        .with_weight_classes(weight_classes(&result))
        .with_prefetch(result.prefetch.clone())
        .with_fused_tiles(fused_tiles(&result));
    let lcmm_sim = sim.run(&result.residency, &lcmm_config);
    diff_point(
        &mut points,
        &mut findings,
        "lcmm",
        result.latency,
        &lcmm_sim,
        (bands.floor, bands.lcmm_ceiling),
        true,
    );

    // LCMM with pipeline fill: the same run plus fill overhead.
    let fill_config = lcmm_config.clone().with_pipeline_fill(true);
    let fill_sim = sim.run(&result.residency, &fill_config);
    let fill_point = CasePoint {
        label: "lcmm+fill".into(),
        analytic: result.latency,
        simulated: fill_sim.steady_latency,
    };
    let fill_ratio = fill_point.ratio();
    if fill_ratio > bands.fill_ceiling {
        findings.push(Finding::divergence(
            DivergenceClass::Fill,
            format!(
                "lcmm+fill ratio {fill_ratio:.4} above fill ceiling {}",
                bands.fill_ceiling
            ),
        ));
    } else if fill_ratio < bands.floor {
        findings.push(Finding::divergence(
            DivergenceClass::PrefetchTiming,
            format!(
                "lcmm+fill ratio {fill_ratio:.4} below floor {} — fill run beat the analytic model",
                bands.floor
            ),
        ));
    }
    points.push(fill_point);

    // Missing-plan probe.
    let evaluator = Evaluator::new(graph, &profile);
    let mut features_only = Residency::new();
    for v in result.residency.iter() {
        if matches!(v, ValueId::Feature(_)) {
            features_only.insert(*v);
        }
    }
    let demand_floor = evaluator.total_latency(&features_only);
    let all_shared: HashMap<_, _> = result
        .residency
        .iter()
        .filter_map(|v| match v {
            ValueId::Weight(n) => Some((*n, WeightClass::Shared)),
            ValueId::Feature(_) => None,
        })
        .collect();
    let probe_config = SimConfig::default()
        .with_inferences(2)
        .with_weight_classes(all_shared);
    let probe_sim = sim.run(&result.residency, &probe_config);
    let probe_point = CasePoint {
        label: "no-plan-probe".into(),
        analytic: demand_floor,
        simulated: probe_sim.steady_latency,
    };
    // The probe is banded on both sides: below the floor the simulator
    // hid loads the model says must be paid for; above the ceiling it
    // moved unplanned loads away from their consumers (the pre-fix
    // engine launched them at the schedule head, displacing the FIFO).
    let probe_ratio = probe_point.ratio();
    if probe_ratio < bands.probe_floor {
        findings.push(Finding::divergence(
            DivergenceClass::PrefetchTiming,
            format!(
                "no-plan probe ratio {probe_ratio:.4} below floor {}: the simulator hid \
                 weight loads that have no prefetch edge",
                bands.probe_floor
            ),
        ));
    } else if probe_ratio > bands.probe_ceiling {
        findings.push(Finding::divergence(
            DivergenceClass::PrefetchTiming,
            format!(
                "no-plan probe ratio {probe_ratio:.4} above ceiling {}: the simulator \
                 launched weight loads that have no prefetch edge away from their consumers",
                bands.probe_ceiling
            ),
        ));
    }
    points.push(probe_point);

    CaseReport {
        model: graph.name().to_string(),
        precision,
        allocator: options.allocator,
        points,
        findings,
    }
}

/// Measures one differential point and classifies any band violation.
fn diff_point(
    points: &mut Vec<CasePoint>,
    findings: &mut Vec<Finding>,
    label: &str,
    analytic: f64,
    sim: &SimReport,
    (floor, ceiling): (f64, f64),
    has_prefetch: bool,
) {
    let point = CasePoint {
        label: label.into(),
        analytic,
        simulated: sim.steady_latency,
    };
    let ratio = point.ratio();
    if ratio < floor {
        // The simulator beat a model that already assumes perfect
        // overlap: work was skipped. On a run with a prefetch plan the
        // usual culprit is a load hidden outside its planned window.
        let class = if has_prefetch {
            DivergenceClass::PrefetchTiming
        } else {
            DivergenceClass::ChannelContention
        };
        findings.push(Finding::divergence(
            class,
            format!("{label} ratio {ratio:.4} below floor {floor}"),
        ));
    } else if ratio > ceiling {
        // Over-runs are prefetch-timing when stalls explain the gap,
        // channel contention otherwise.
        let gap = sim.steady_latency - analytic;
        let class = if has_prefetch && sim.prefetch_stall > 0.5 * gap {
            DivergenceClass::PrefetchTiming
        } else {
            DivergenceClass::ChannelContention
        };
        findings.push(Finding::divergence(
            class,
            format!(
                "{label} ratio {ratio:.4} above ceiling {ceiling} (stall {:.2e}s of {gap:.2e}s gap)",
                sim.prefetch_stall
            ),
        ));
    }
    points.push(point);
}

/// Verifies the structural invariants of one LCMM result against an
/// explicit SRAM budget and returns the findings.
///
/// For a single-tenant result the budget is the design's own
/// [`lcmm_fpga::AccelDesign::tensor_sram_budget`]; for a tenant of a
/// multi-model co-plan it is that tenant's share of the shared pool,
/// which is what makes the per-tenant budget invariant checkable at
/// all (each tenant's design still reports the whole device's budget).
#[must_use]
pub fn check_result_invariants(graph: &Graph, result: &LcmmResult, budget: u64) -> Vec<Finding> {
    let profile = effective_profile(graph, result);
    let schedule = Schedule::new(graph);
    let mut findings = Vec::new();
    check_invariants(graph, result, &profile, &schedule, budget, &mut findings);
    findings
}

/// Verifies the structural invariants of one LCMM result.
fn check_invariants(
    graph: &Graph,
    result: &LcmmResult,
    profile: &lcmm_fpga::GraphProfile,
    schedule: &Schedule,
    budget: u64,
    findings: &mut Vec<Finding>,
) {
    // 1. The chosen buffers fit the SRAM budget. Occupied (mode-aware)
    // bytes, not full footprints: a streamed buffer only holds its
    // ping-pong staging pair on chip and a partially resident buffer its
    // resident prefix, which is exactly what the knapsack charged.
    let allocated: u64 = result.occupied_buffer_sizes().iter().sum();
    if allocated > budget {
        findings.push(Finding::invariant(
            "budget",
            format!("allocated {allocated} B exceeds SRAM budget {budget} B"),
        ));
    }

    // 2. Co-located buffer members are interference-free: their
    // lifespans (feature liveness or prefetch occupancy spans) must be
    // pairwise disjoint even after splitting rewrote the coloring.
    let values =
        ValueTable::build_batched(graph, profile, result.design.precision, result.design.batch);
    let feature_spans = feature_lifespans(schedule, values.feature_candidates());
    let weight_spans = result.prefetch.intervals();
    let span_of = |id: ValueId| -> Option<LiveInterval> {
        match id {
            ValueId::Feature(_) => feature_spans.get(&id).copied(),
            ValueId::Weight(_) => weight_spans.get(&id).copied(),
        }
    };
    for buf in &result.buffers {
        for (i, &a) in buf.members.iter().enumerate() {
            for &b in &buf.members[i + 1..] {
                if let (Some(sa), Some(sb)) = (span_of(a), span_of(b)) {
                    if sa.overlaps(&sb) {
                        findings.push(Finding::invariant(
                            "interference",
                            format!(
                                "buffer members {a} [{},{}] and {b} [{},{}] overlap",
                                sa.start, sa.end, sb.start, sb.end
                            ),
                        ));
                    }
                }
            }
        }
    }

    // 3. Every prefetch edge launches strictly before its consumer; a
    // degenerate `start == end` span is only legal at the graph head,
    // where exposure is the declared escape hatch.
    for (&id, edge) in result.prefetch.iter() {
        let consumer = schedule.position(id.node());
        if edge.end != consumer {
            findings.push(Finding::invariant(
                "prefetch-edge",
                format!(
                    "{id}: edge ends at position {} but the consumer runs at {consumer}",
                    edge.end
                ),
            ));
        }
        if edge.start > edge.end {
            findings.push(Finding::invariant(
                "prefetch-edge",
                format!(
                    "{id}: edge starts at {} after its end {}",
                    edge.start, edge.end
                ),
            ));
        }
        if edge.start == edge.end && edge.end != 0 {
            findings.push(Finding::invariant(
                "prefetch-edge",
                format!(
                    "{id}: edge launches at its consumer (position {}) with no hiding window",
                    edge.end
                ),
            ));
        }
        if edge.exposed_seconds < 0.0 || edge.exposed_seconds > edge.load_seconds + 1e-12 {
            findings.push(Finding::invariant(
                "prefetch-edge",
                format!(
                    "{id}: exposure {} outside [0, load {}]",
                    edge.exposed_seconds, edge.load_seconds
                ),
            ));
        }
    }

    // 4. Recorded exposure is attached to resident weights and bounded
    // by the *non-resident* fraction of the weight's own load time: a
    // fully resident (pinned or shared) weight may expose at most its
    // whole load, a partially resident one only the tail that still
    // streams, and a streamed weight the full load. Double-paying — an
    // exposure above what the still-off-chip bytes can cost — is the
    // bug this catches.
    let mut exposure_bounds: HashMap<lcmm_graph::NodeId, f64> = HashMap::new();
    for (i, (buf, &chosen)) in result.buffers.iter().zip(&result.chosen).enumerate() {
        if !chosen || buf.members.len() != 1 {
            continue;
        }
        let ValueId::Weight(node) = buf.members[0] else {
            continue;
        };
        let load = profile.node(node).weight;
        let bound = match result
            .weight_modes
            .get(i)
            .copied()
            .unwrap_or(WeightMode::Pinned)
        {
            WeightMode::Pinned | WeightMode::Streamed { .. } => load,
            WeightMode::PartialResident { resident_bytes } => {
                let resident_fraction = if buf.bytes == 0 {
                    1.0
                } else {
                    (resident_bytes as f64 / buf.bytes as f64).min(1.0)
                };
                (1.0 - resident_fraction) * load
            }
        };
        exposure_bounds.insert(node, bound);
    }
    for node in graph.iter() {
        let exposed = result.residency.exposed_weight(node.id());
        if exposed <= 0.0 {
            continue;
        }
        if !result.residency.contains(ValueId::Weight(node.id())) {
            findings.push(Finding::invariant(
                "exposure",
                format!(
                    "{}: exposure {exposed} on a non-resident weight",
                    node.name()
                ),
            ));
        }
        let load = profile.node(node.id()).weight;
        let bound = exposure_bounds.get(&node.id()).copied().unwrap_or(load);
        if exposed > bound + 1e-9 {
            findings.push(Finding::invariant(
                "exposure",
                format!(
                    "{}: exposure {exposed} exceeds the non-resident load bound {bound} \
                     (full load {load})",
                    node.name()
                ),
            ));
        }
    }

    // 5. Fused groups: an eliminated intermediate never materialises in
    // DRAM *or* SRAM — it lives only inside the group's tile-sized
    // staging buffer — so it must not be pinned in the residency nor
    // colored into any virtual buffer.
    if !result.fusion.is_empty() {
        for v in result.residency.iter() {
            if let ValueId::Feature(n) = v {
                if result.fusion.eliminates(*n) {
                    findings.push(Finding::invariant(
                        "fusion",
                        format!("eliminated intermediate {v} is pinned in the residency"),
                    ));
                }
            }
        }
        for buf in &result.buffers {
            for &m in &buf.members {
                if let ValueId::Feature(n) = m {
                    if result.fusion.eliminates(n) {
                        findings.push(Finding::invariant(
                            "fusion",
                            format!("eliminated intermediate {m} is colored into a buffer"),
                        ));
                    }
                }
            }
        }
    }
}

/// A minimised failing configuration, serialisable as a repro file.
///
/// The spec lives in *generator space*: instead of shipping a graph
/// JSON, it records the `zoo::synthetic_scaled` parameters that rebuild
/// the graph byte-identically, so a repro stays a few lines and the
/// shrinker can move through the space with structural passes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReproSpec {
    /// Requested node count of the synthetic graph.
    pub depth: usize,
    /// Branch cap per inception module.
    pub branching: usize,
    /// Topology seed.
    pub seed: u64,
    /// Channel width scale in percent (100 = unscaled).
    pub width_percent: usize,
    /// Arithmetic precision of the audited run.
    pub precision: Precision,
    /// Allocator of the audited run.
    pub allocator: AllocatorKind,
}

impl ReproSpec {
    /// Rebuilds the graph this spec describes.
    #[must_use]
    pub fn graph(&self) -> Graph {
        zoo::synthetic_scaled(self.depth, self.branching, self.seed, self.width_percent)
    }

    /// Runs the audit for this spec.
    #[must_use]
    pub fn audit(&self, bands: &ToleranceBands) -> CaseReport {
        audit_case(&self.graph(), self.precision, self.allocator, bands)
    }

    /// Stable file stem, e.g. `synthetic_64x2x5@50-fix16-dnnk`.
    #[must_use]
    pub fn file_stem(&self) -> String {
        let precision = match self.precision {
            Precision::Fix8 => "fix8",
            Precision::Fix16 => "fix16",
            Precision::Float32 => "float32",
        };
        let allocator = match self.allocator {
            AllocatorKind::Dnnk => "dnnk",
            AllocatorKind::DnnkIterative => "dnnk-iterative",
            AllocatorKind::Greedy => "greedy",
            AllocatorKind::Exhaustive => "exhaustive",
        };
        format!("{}-{precision}-{allocator}", self.graph_name())
    }

    fn graph_name(&self) -> String {
        if self.width_percent == 100 {
            format!("synthetic_{}x{}x{}", self.depth, self.branching, self.seed)
        } else {
            format!(
                "synthetic_{}x{}x{}@{}",
                self.depth, self.branching, self.seed, self.width_percent
            )
        }
    }
}

/// The deterministic random-graph grid: spec for audit seed `index`.
/// Depth, branching, precision and allocator all rotate with different
/// periods so a handful of seeds still covers the cross-product's
/// corners.
#[must_use]
pub fn random_spec(index: usize) -> ReproSpec {
    const DEPTHS: [usize; 4] = [96, 128, 192, 256];
    const PRECISIONS: [Precision; 3] = [Precision::Fix16, Precision::Fix8, Precision::Float32];
    const ALLOCATORS: [AllocatorKind; 3] = [
        AllocatorKind::Dnnk,
        AllocatorKind::DnnkIterative,
        AllocatorKind::Greedy,
    ];
    ReproSpec {
        depth: DEPTHS[index % DEPTHS.len()],
        branching: 2 + index % 3,
        seed: 0xA0D1 + index as u64,
        width_percent: 100,
        precision: PRECISIONS[index % PRECISIONS.len()],
        allocator: ALLOCATORS[(index / 2) % ALLOCATORS.len()],
    }
}

/// Minimises a failing spec with greedy structural passes, keeping a
/// candidate only while `still_fails` reproduces the failure:
///
/// * **delete-node** — halve `depth`, dropping whole modules;
/// * **narrow** — decrement the branch cap;
/// * **halve-tensor** — halve the channel width scale.
///
/// Runs the passes to a fixed point. Each pass walks monotonically, so
/// the loop terminates after `O(log depth + branching + log width)`
/// audit runs.
pub fn shrink<F>(mut spec: ReproSpec, mut still_fails: F) -> ReproSpec
where
    F: FnMut(&ReproSpec) -> bool,
{
    loop {
        let mut shrunk = false;
        while spec.depth / 2 >= 8 {
            let candidate = ReproSpec {
                depth: spec.depth / 2,
                ..spec
            };
            if still_fails(&candidate) {
                spec = candidate;
                shrunk = true;
            } else {
                break;
            }
        }
        while spec.branching > 2 {
            let candidate = ReproSpec {
                branching: spec.branching - 1,
                ..spec
            };
            if still_fails(&candidate) {
                spec = candidate;
                shrunk = true;
            } else {
                break;
            }
        }
        while spec.width_percent / 2 >= 13 {
            let candidate = ReproSpec {
                width_percent: spec.width_percent / 2,
                ..spec
            };
            if still_fails(&candidate) {
                spec = candidate;
                shrunk = true;
            } else {
                break;
            }
        }
        if !shrunk {
            return spec;
        }
    }
}

/// A repro file: the minimised spec plus the findings captured when it
/// was minimised (context for whoever opens the file, not replayed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Repro {
    /// The minimised failing configuration.
    pub spec: ReproSpec,
    /// Finding messages at capture time.
    pub findings: Vec<String>,
}

/// Writes a minimised repro under `dir`, returning its path.
///
/// # Errors
///
/// Propagates filesystem errors (directory creation, write).
pub fn write_repro(dir: &Path, spec: &ReproSpec, findings: &[Finding]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let repro = Repro {
        spec: *spec,
        findings: findings.iter().map(|f| f.message.clone()).collect(),
    };
    let path = dir.join(format!("{}.json", spec.file_stem()));
    let json = serde_json::to_string_pretty(&repro).map_err(io::Error::other)?;
    fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Loads every `*.json` repro spec under `dir`, sorted by file name so
/// replay order is stable. A missing directory is an empty corpus.
///
/// # Errors
///
/// Propagates filesystem errors and malformed repro files.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<ReproSpec>> {
    let mut entries: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(iter) => iter
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    entries.sort();
    let mut specs = Vec::with_capacity(entries.len());
    for path in entries {
        let text = fs::read_to_string(&path)?;
        let repro: Repro = serde_json::from_str(&text)
            .map_err(|e| io::Error::other(format!("{}: {e}", path.display())))?;
        specs.push(repro.spec);
    }
    Ok(specs)
}

/// The default audit grid: `(model, precision, allocator)` cells,
/// cheap models first so a broken invariant fails fast.
#[must_use]
pub fn default_grid() -> Vec<(String, Precision, AllocatorKind)> {
    let mut grid = Vec::new();
    // Every zoo model under the default flow at the paper's headline
    // precision.
    for g in zoo::full_zoo() {
        grid.push((g.name().to_string(), Precision::Fix16, AllocatorKind::Dnnk));
    }
    // The Table 1 trio across the remaining precisions.
    for g in zoo::benchmark_suite() {
        for precision in [Precision::Fix8, Precision::Float32] {
            grid.push((g.name().to_string(), precision, AllocatorKind::Dnnk));
        }
    }
    // Allocator variants on the trio.
    for g in zoo::benchmark_suite() {
        for allocator in [AllocatorKind::DnnkIterative, AllocatorKind::Greedy] {
            grid.push((g.name().to_string(), Precision::Fix16, allocator));
        }
    }
    // Fixed synthetic workloads: wide and deep.
    grid.push((
        "synthetic:256x4x7".to_string(),
        Precision::Fix16,
        AllocatorKind::Dnnk,
    ));
    grid.push((
        "synthetic:512x2x11".to_string(),
        Precision::Fix16,
        AllocatorKind::Dnnk,
    ));
    grid
}

/// Random seeds audited when [`AuditOptions`] is left at its default.
pub const DEFAULT_SEEDS: usize = 8;

/// Configuration of a full [`run_audit`] sweep.
///
/// The struct is `#[non_exhaustive]` — build it with
/// [`AuditOptions::default`] and the `with_*` methods so new knobs can
/// land without breaking callers.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct AuditOptions {
    /// Tolerance bands applied to every differential point.
    pub bands: ToleranceBands,
    /// `(model, precision, allocator)` cells to audit.
    pub grid: Vec<(String, Precision, AllocatorKind)>,
    /// Number of seeded random graphs appended after the grid.
    pub seeds: usize,
    /// Number of tiny-SRAM streaming cases appended after the seeds:
    /// each replans a seeded synthetic graph under a deliberately small
    /// tensor budget with [`StreamingMode::Auto`], exercising the
    /// streamed and partially resident weight classes (and the
    /// degenerate-budget code paths) end to end against the simulator.
    pub tiny_sram_seeds: usize,
    /// Number of fused-planning cases appended after the tiny-SRAM
    /// batch: shortcut-heavy zoo networks replanned under a tight
    /// absolute budget with [`FusionMode::Auto`], so the fused latency
    /// table, per-tile simulation and the fusion structural invariants
    /// are cross-checked end to end.
    pub fused_cases: usize,
    /// Repro-corpus directory: replayed after the grid, and failing
    /// seeds are minimised into it.
    pub repro_dir: PathBuf,
}

impl Default for AuditOptions {
    fn default() -> Self {
        Self {
            bands: ToleranceBands::default(),
            grid: default_grid(),
            seeds: DEFAULT_SEEDS,
            tiny_sram_seeds: 2,
            fused_cases: 2,
            repro_dir: PathBuf::from("checks/repros"),
        }
    }
}

impl AuditOptions {
    /// Replaces the tolerance bands.
    #[must_use]
    pub fn with_bands(mut self, bands: ToleranceBands) -> Self {
        self.bands = bands;
        self
    }

    /// Replaces the audit grid.
    #[must_use]
    pub fn with_grid(mut self, grid: Vec<(String, Precision, AllocatorKind)>) -> Self {
        self.grid = grid;
        self
    }

    /// Sets the number of seeded random graphs.
    #[must_use]
    pub fn with_seeds(mut self, seeds: usize) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the number of tiny-SRAM streaming cases.
    #[must_use]
    pub fn with_tiny_sram_seeds(mut self, tiny_sram_seeds: usize) -> Self {
        self.tiny_sram_seeds = tiny_sram_seeds;
        self
    }

    /// Sets the number of fused-planning cases.
    #[must_use]
    pub fn with_fused_cases(mut self, fused_cases: usize) -> Self {
        self.fused_cases = fused_cases;
        self
    }

    /// Sets the repro-corpus directory.
    #[must_use]
    pub fn with_repro_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.repro_dir = dir.into();
        self
    }
}

/// The outcome of a full [`run_audit`] sweep.
#[derive(Debug, Clone, Serialize)]
pub struct AuditOutcome {
    /// Every audited cell: grid, corpus replays, then seeds.
    pub cases: Vec<CaseReport>,
    /// Paths of repro files written for failing seeds this run.
    pub repros_written: Vec<String>,
}

impl AuditOutcome {
    /// Number of cells with findings.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.cases.iter().filter(|c| !c.passed()).count()
    }

    /// Whether the whole sweep is clean.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures() == 0
    }
}

/// Runs the full audit sweep: the grid, the repro corpus, then seeded
/// random graphs (failures are shrunk and written into the corpus).
/// `progress` receives one line per audited cell.
///
/// # Errors
///
/// Unknown grid models, unreadable corpus files and repro-write
/// failures are reported as strings; findings are **not** errors — they
/// come back inside [`AuditOutcome`].
pub fn run_audit(
    options: &AuditOptions,
    mut progress: impl FnMut(&str),
) -> Result<AuditOutcome, String> {
    let mut cases = Vec::new();
    for (model, precision, allocator) in &options.grid {
        let graph = zoo::by_name(model).ok_or_else(|| format!("unknown model {model:?}"))?;
        progress(&format!("audit: {model} {precision} {allocator:?}"));
        cases.push(audit_case(&graph, *precision, *allocator, &options.bands));
    }

    // Replay the repro corpus: previously minimised failures are
    // permanent regression cases.
    let corpus = load_corpus(&options.repro_dir).map_err(|e| format!("repro corpus: {e}"))?;
    for spec in &corpus {
        progress(&format!("audit: replay {}", spec.file_stem()));
        cases.push(spec.audit(&options.bands));
    }

    // Seeded random graphs; a failure is shrunk and joins the corpus.
    let mut repros_written = Vec::new();
    for i in 0..options.seeds {
        let spec = random_spec(i);
        progress(&format!("audit: seed {i} ({})", spec.file_stem()));
        let report = spec.audit(&options.bands);
        if report.passed() {
            cases.push(report);
            continue;
        }
        progress(&format!("audit: seed {i} failed, shrinking"));
        let minimal = shrink(spec, |s| !s.audit(&options.bands).passed());
        let final_report = minimal.audit(&options.bands);
        let path = write_repro(&options.repro_dir, &minimal, &final_report.findings)
            .map_err(|e| format!("write repro: {e}"))?;
        progress(&format!("audit: minimised to {}", path.display()));
        repros_written.push(path.display().to_string());
        cases.push(final_report);
    }

    // Tiny-SRAM streaming batch: the same seeded graphs replanned under
    // budgets far below the pinning regime — down to a single capacity
    // unit — with AutoWS enabled. This is where streamed and partially
    // resident weights actually get picked, so the mode-aware invariants
    // and the simulator's re-streaming model are exercised for real.
    const TINY_BUDGETS: [u64; 3] = [36 * 1024, 1 << 20, 4 << 20];
    for i in 0..options.tiny_sram_seeds {
        let spec = random_spec(i);
        let budget = TINY_BUDGETS[i % TINY_BUDGETS.len()];
        let graph = spec.graph();
        progress(&format!(
            "audit: tiny-sram {i} ({} @ {budget} B, streaming auto)",
            spec.file_stem()
        ));
        let plan_options = LcmmOptions::default()
            .with_allocator(spec.allocator)
            .with_tensor_budget(Some(budget))
            .with_weight_streaming(StreamingMode::Auto);
        let mut report =
            audit_case_with_options(&graph, spec.precision, &plan_options, &options.bands);
        report.model = format!("{}@{budget}B+auto-ws", report.model);
        cases.push(report);
    }

    // Fused-planning batch: shortcut-heavy zoo networks replanned
    // under a tight absolute budget with fusion enabled. This is where
    // the planner actually selects fused groups, so the per-tile
    // simulation, the fused differential bands and the fusion
    // invariants are exercised against real plans rather than the
    // identity transform.
    const FUSED_MODELS: [&str; 2] = ["resnet50", "mobilenet"];
    const FUSED_BUDGET: u64 = 4 << 20;
    for model in FUSED_MODELS.iter().take(options.fused_cases) {
        let graph = zoo::by_name(model).ok_or_else(|| format!("unknown model {model:?}"))?;
        progress(&format!(
            "audit: fused {model} @ {FUSED_BUDGET} B, fusion auto"
        ));
        let plan_options = LcmmOptions::default()
            .with_tensor_budget(Some(FUSED_BUDGET))
            .with_fusion(FusionMode::Auto);
        let mut report =
            audit_case_with_options(&graph, Precision::Fix16, &plan_options, &options.bands);
        report.model = format!("{}@{FUSED_BUDGET}B+fusion", report.model);
        cases.push(report);
    }

    Ok(AuditOutcome {
        cases,
        repros_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_options_builder_chains() {
        let opts = AuditOptions::default()
            .with_seeds(2)
            .with_repro_dir("/tmp/nowhere")
            .with_grid(vec![(
                "alexnet".to_string(),
                Precision::Fix16,
                AllocatorKind::Dnnk,
            )]);
        assert_eq!(opts.seeds, 2);
        assert_eq!(opts.repro_dir, PathBuf::from("/tmp/nowhere"));
        assert_eq!(opts.grid.len(), 1);
    }

    #[test]
    fn run_audit_sweeps_grid_and_seeds() {
        let opts = AuditOptions::default()
            .with_grid(vec![(
                "alexnet".to_string(),
                Precision::Fix16,
                AllocatorKind::Dnnk,
            )])
            .with_seeds(1)
            .with_tiny_sram_seeds(1)
            .with_fused_cases(1)
            .with_repro_dir("/nonexistent/lcmm-audit-corpus");
        let mut lines = Vec::new();
        let outcome = run_audit(&opts, |l| lines.push(l.to_string())).expect("audit runs");
        assert_eq!(
            outcome.cases.len(),
            4,
            "one grid cell + one seed + one tiny-SRAM case + one fused case"
        );
        assert!(outcome.passed(), "clean sweep: {:?}", outcome.cases);
        assert!(outcome.repros_written.is_empty());
        assert!(lines.iter().any(|l| l.contains("alexnet")));
        assert!(lines.iter().any(|l| l.contains("tiny-sram")));
        assert!(lines.iter().any(|l| l.contains("fused")));
        assert!(outcome.cases[2].model.contains("+auto-ws"));
        assert!(outcome.cases[3].model.contains("+fusion"));
    }

    #[test]
    fn run_audit_rejects_unknown_model() {
        let opts = AuditOptions::default().with_grid(vec![(
            "no-such-net".to_string(),
            Precision::Fix16,
            AllocatorKind::Dnnk,
        )]);
        let err = run_audit(&opts, |_| {}).unwrap_err();
        assert!(err.contains("no-such-net"));
    }

    #[test]
    fn clean_case_on_a_real_model() {
        let g = zoo::googlenet();
        let bands = ToleranceBands::default();
        let report = audit_case(&g, Precision::Fix16, AllocatorKind::Dnnk, &bands);
        assert!(
            report.passed(),
            "googlenet audit found: {:?}",
            report.findings
        );
        assert_eq!(report.points.len(), 4);
        let labels: Vec<&str> = report.points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["umm", "lcmm", "lcmm+fill", "no-plan-probe"]);
    }

    #[test]
    fn tiny_sram_streaming_case_stays_in_band() {
        let g = zoo::alexnet();
        let options = LcmmOptions::default()
            .with_tensor_budget(Some(1 << 20))
            .with_weight_streaming(StreamingMode::Auto);
        let report =
            audit_case_with_options(&g, Precision::Fix16, &options, &ToleranceBands::default());
        assert!(
            report.passed(),
            "tiny-SRAM streaming audit found: {:?}",
            report.findings
        );
    }

    #[test]
    fn exposure_invariant_caps_partial_residents_at_the_streamed_tail() {
        // Replan with streaming off, then forge a partially resident
        // mode on a chosen single-member weight buffer with a full-load
        // exposure: the mode-aware bound must flag the double-pay.
        let g = zoo::alexnet();
        let device = Device::vu9p();
        let mut result = PlanRequest::new(&g, &device, Precision::Fix16)
            .run()
            .expect("alexnet plans");
        let budget = result.design.tensor_sram_budget();
        assert!(check_result_invariants(&g, &result, budget).is_empty());

        let idx = result
            .buffers
            .iter()
            .zip(&result.chosen)
            .position(|(b, &c)| c && matches!(b.members[..], [ValueId::Weight(_)]))
            .expect("a chosen single-member weight buffer");
        let ValueId::Weight(node) = result.buffers[idx].members[0] else {
            unreachable!()
        };
        let load = result.design.profile(&g).node(node).weight;

        // Half resident, but exposing the *full* load: double-paid.
        result.weight_modes[idx] = WeightMode::PartialResident {
            resident_bytes: result.buffers[idx].bytes / 2,
        };
        result.residency.set_exposed_weight(node, load);
        let findings = check_result_invariants(&g, &result, budget);
        assert!(
            findings
                .iter()
                .any(|f| f.check == "invariant/exposure" && f.message.contains("non-resident")),
            "double-paid exposure not flagged: {findings:?}"
        );

        // Exposing only the streamed tail is legal.
        result.residency.set_exposed_weight(node, 0.49 * load);
        let findings = check_result_invariants(&g, &result, budget);
        assert!(
            !findings.iter().any(|f| f.check == "invariant/exposure"),
            "legal tail exposure flagged: {findings:?}"
        );
    }

    #[test]
    fn fused_case_stays_in_band() {
        // A fused plan on a tight budget must sit inside the same
        // differential bands as the legacy pipeline: the simulator runs
        // the fused table with per-tile transfers, so `simulated /
        // analytic` stays an apples-to-apples ratio.
        let g = zoo::resnet50();
        let options = LcmmOptions::default()
            .with_tensor_budget(Some(4 << 20))
            .with_fusion(FusionMode::Auto);
        let report =
            audit_case_with_options(&g, Precision::Fix16, &options, &ToleranceBands::default());
        assert!(report.passed(), "fused audit found: {:?}", report.findings);
    }

    #[test]
    fn fusion_invariant_flags_materialised_intermediates() {
        let g = zoo::resnet50();
        let device = Device::vu9p();
        let design = lcmm_fpga::AccelDesign::explore(&g, &device, Precision::Fix16);
        let budget = design.tensor_sram_budget() / 8;
        let mut result = PlanRequest::new(&g, &device, Precision::Fix16)
            .options(
                LcmmOptions::default()
                    .with_fusion(FusionMode::Auto)
                    .with_tensor_budget(Some(budget)),
            )
            .with_design(design)
            .run()
            .expect("resnet50 plans");
        assert!(!result.fusion.is_empty(), "expected fused groups");
        assert!(check_result_invariants(&g, &result, budget).is_empty());

        // Forge an eliminated intermediate into the residency: it has
        // no DRAM tensor to pin, so the fusion invariant must fire.
        let eliminated = result.fusion.eliminated()[0];
        result.residency.insert(ValueId::Feature(eliminated));
        let findings = check_result_invariants(&g, &result, budget);
        assert!(
            findings
                .iter()
                .any(|f| f.check == "invariant/fusion" && f.message.contains("residency")),
            "materialised intermediate not flagged: {findings:?}"
        );
    }

    #[test]
    fn clean_case_on_a_synthetic_model() {
        let g = zoo::synthetic(128, 3, 5);
        let bands = ToleranceBands::default();
        let report = audit_case(&g, Precision::Fix16, AllocatorKind::Greedy, &bands);
        assert!(report.passed(), "synthetic audit: {:?}", report.findings);
    }

    #[test]
    fn impossible_bands_classify_divergences() {
        // Squeeze the bands until everything fails, and check each
        // point produced a *classified* finding, not a bare error.
        let bands = ToleranceBands {
            floor: 0.999_999,
            umm_ceiling: 1.000_001,
            lcmm_ceiling: 1.000_001,
            fill_ceiling: 1.000_001,
            probe_floor: 2.0,
            probe_ceiling: 3.0,
        };
        let g = zoo::vgg16();
        let report = audit_case(&g, Precision::Fix16, AllocatorKind::Dnnk, &bands);
        assert!(!report.passed());
        for finding in &report.findings {
            assert!(
                finding.check.starts_with("divergence/"),
                "unexpected {:?}",
                finding
            );
            assert!(finding.class.is_some());
        }
        // The probe floor of 2.0 is unreachable, so at least one
        // prefetch-timing classification must appear.
        assert!(report
            .findings
            .iter()
            .any(|f| f.class == Some(DivergenceClass::PrefetchTiming)));
    }

    #[test]
    fn shrink_minimises_while_failure_reproduces() {
        let start = ReproSpec {
            depth: 256,
            branching: 5,
            seed: 9,
            width_percent: 100,
            precision: Precision::Fix16,
            allocator: AllocatorKind::Dnnk,
        };
        // A synthetic failure predicate: "fails" while depth ≥ 32 and
        // width ≥ 50%. The shrinker must land on the boundary.
        let shrunk = shrink(start, |s| s.depth >= 32 && s.width_percent >= 50);
        assert_eq!(shrunk.depth, 32);
        assert_eq!(shrunk.branching, 2);
        assert_eq!(shrunk.width_percent, 50);
    }

    #[test]
    fn shrink_keeps_an_unshrinkable_spec() {
        let start = random_spec(0);
        let shrunk = shrink(start, |_| false);
        assert_eq!(shrunk, start);
    }

    #[test]
    fn repro_roundtrip_through_disk() {
        let dir = std::env::temp_dir().join(format!("lcmm-audit-test-{}", std::process::id()));
        let spec = random_spec(3);
        let finding = Finding::divergence(DivergenceClass::PrefetchTiming, "test".into());
        let path = write_repro(&dir, &spec, &[finding]).expect("write repro");
        assert!(path.ends_with(format!("{}.json", spec.file_stem())));
        let corpus = load_corpus(&dir).expect("load corpus");
        assert_eq!(corpus, vec![spec]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_corpus_dir_is_empty() {
        let corpus = load_corpus(Path::new("/nonexistent/lcmm-audit")).expect("empty");
        assert!(corpus.is_empty());
    }

    #[test]
    fn random_specs_cover_the_grid_corners() {
        let specs: Vec<ReproSpec> = (0..8).map(random_spec).collect();
        // Deterministic.
        assert_eq!(specs, (0..8).map(random_spec).collect::<Vec<_>>());
        // All three precisions and allocators appear within 8 seeds.
        for precision in Precision::ALL {
            assert!(specs.iter().any(|s| s.precision == precision));
        }
        for allocator in [
            AllocatorKind::Dnnk,
            AllocatorKind::DnnkIterative,
            AllocatorKind::Greedy,
        ] {
            assert!(specs.iter().any(|s| s.allocator == allocator));
        }
        // Specs build valid graphs.
        assert!(specs[0].graph().len() >= specs[0].depth);
    }

    #[test]
    fn default_grid_resolves_and_is_ordered_cheap_first() {
        let grid = default_grid();
        assert!(grid.len() >= 18, "grid too small: {}", grid.len());
        for (model, _, _) in &grid {
            assert!(zoo::by_name(model).is_some(), "unknown model {model}");
        }
        assert_eq!(grid[0].0, "alexnet");
    }
}
