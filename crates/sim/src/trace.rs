//! Memory-footprint traces (paper Fig. 3).
//!
//! Fig. 3 of the paper contrasts UMM and LCMM by drawing, over time,
//! which tensors occupy on-chip buffers and which stream from DRAM.
//! This module reconstructs that picture from a simulation run: each
//! feature/weight tensor gets a row with its residency and the time
//! span during which it exists.

use crate::engine::SimReport;
use lcmm_core::liveness::Schedule;
use lcmm_core::prefetch::PrefetchPlan;
use lcmm_core::{Residency, ValueId};
use lcmm_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Where a tensor lives in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// On-chip tensor buffer.
    OnChip,
    /// Streams through DRAM tile buffers.
    OffChip,
}

/// One row of the footprint timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FootprintRow {
    /// The tensor.
    pub value: ValueId,
    /// Human-readable owner layer name.
    pub layer: String,
    /// Residency.
    pub placement: Placement,
    /// Wall-clock when the tensor starts existing (feature: producer
    /// start; weight: prefetch launch or demand stream start).
    pub from: f64,
    /// Wall-clock of the tensor's last use.
    pub to: f64,
    /// Tensor size in bytes (0 if unknown to the caller).
    pub bytes: u64,
}

/// The footprint report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Footprint {
    /// All rows, ordered by `from`.
    pub rows: Vec<FootprintRow>,
}

impl Footprint {
    /// Builds the footprint of the nodes in `focus` (e.g. one inception
    /// block) from a simulation report.
    #[must_use]
    pub fn build(
        graph: &Graph,
        report: &SimReport,
        residency: &Residency,
        prefetch: &PrefetchPlan,
        focus: &[NodeId],
    ) -> Self {
        let schedule = Schedule::new(graph);
        let timing = |pos: usize| report.last_inference.get(pos);
        let mut rows = Vec::new();
        for &node in focus {
            let pos = schedule.position(node);
            let Some(t) = timing(pos) else { continue };
            // Feature value: exists from producer start to last reader
            // end (or producer end when unread within focus).
            let feature = ValueId::Feature(node);
            let readers_end = graph
                .consumers(node)
                .iter()
                .map(|&c| timing(schedule.position(c)).map_or(t.end, |rt| rt.end))
                .fold(t.end, f64::max);
            rows.push(FootprintRow {
                value: feature,
                layer: graph.node(node).name().to_string(),
                placement: if residency.contains(feature) {
                    Placement::OnChip
                } else {
                    Placement::OffChip
                },
                from: t.start,
                to: readers_end,
                bytes: graph.node(node).output_shape().elems(),
            });
            if graph.node(node).op().has_weights() {
                let weight = ValueId::Weight(node);
                let from = prefetch
                    .edge(weight)
                    .and_then(|e| timing(e.start).map(|lt| lt.start))
                    .unwrap_or(t.start);
                rows.push(FootprintRow {
                    value: weight,
                    layer: graph.node(node).name().to_string(),
                    placement: if residency.contains(weight) {
                        Placement::OnChip
                    } else {
                        Placement::OffChip
                    },
                    from,
                    to: t.end,
                    bytes: graph.node_weight_elems(node),
                });
            }
        }
        rows.sort_by(|a, b| a.from.partial_cmp(&b.from).expect("times are finite"));
        Self { rows }
    }

    /// Rows currently on chip.
    #[must_use]
    pub fn on_chip_rows(&self) -> Vec<&FootprintRow> {
        self.rows
            .iter()
            .filter(|r| r.placement == Placement::OnChip)
            .collect()
    }

    /// Peak simultaneous on-chip bytes over the focus window.
    #[must_use]
    pub fn peak_on_chip_bytes(&self) -> u64 {
        // Sweep over the row endpoints.
        let mut events: Vec<(f64, i64)> = Vec::new();
        for r in self.on_chip_rows() {
            events.push((r.from, r.bytes as i64));
            events.push((r.to, -(r.bytes as i64)));
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(b.1.cmp(&a.1)));
        let mut cur = 0i64;
        let mut peak = 0i64;
        for (_, delta) in events {
            cur += delta;
            peak = peak.max(cur);
        }
        peak.max(0) as u64
    }
}

/// Converts a recorded event log into Chrome trace format (the JSON
/// consumed by `chrome://tracing` / Perfetto): one track per resource
/// (array, three DMA channels, prefetch engine).
///
/// # Examples
///
/// ```
/// use lcmm_core::Residency;
/// use lcmm_fpga::{AccelDesign, Device, Precision};
/// use lcmm_sim::{trace, SimConfig, Simulator};
///
/// let graph = lcmm_graph::zoo::alexnet();
/// let design = AccelDesign::explore(&graph, &Device::vu9p(), Precision::Fix16);
/// let profile = design.profile(&graph);
/// let sim = Simulator::new(&graph, &profile);
/// let report = sim.run(
///     &Residency::new(),
///     &SimConfig::default().with_record_events(true),
/// );
/// let json = trace::to_chrome_trace(&graph, &report.events);
/// assert!(json.starts_with('['));
/// ```
#[must_use]
pub fn to_chrome_trace(graph: &Graph, events: &[crate::SimEvent]) -> String {
    use crate::{ChannelKind, EventKind};
    #[derive(Serialize)]
    struct ChromeEvent<'a> {
        name: &'a str,
        cat: &'static str,
        ph: &'static str,
        /// Microseconds.
        ts: f64,
        dur: f64,
        pid: u32,
        tid: u32,
    }
    let rows: Vec<ChromeEvent<'_>> = events
        .iter()
        .map(|e| {
            let (cat, tid) = match e.kind {
                EventKind::Compute => ("compute", 0),
                EventKind::Transfer(ChannelKind::InputFeature) => ("dma-if", 1),
                EventKind::Transfer(ChannelKind::Weight) => ("dma-wt", 2),
                EventKind::Transfer(ChannelKind::OutputFeature) => ("dma-of", 3),
                EventKind::Prefetch => ("prefetch", 4),
            };
            ChromeEvent {
                name: graph.node(e.node).name(),
                cat,
                ph: "X",
                ts: e.start * 1e6,
                dur: (e.end - e.start) * 1e6,
                pid: 1,
                tid,
            }
        })
        .collect();
    serde_json::to_string(&rows).expect("chrome events always serialise")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use lcmm_core::pipeline::compare;
    use lcmm_fpga::{Device, Precision};
    use lcmm_graph::zoo;

    #[test]
    fn footprint_rows_cover_focus_block() {
        let g = zoo::inception_v4();
        let (_, lcmm) = compare(&g, &Device::vu9p(), Precision::Fix16);
        let profile = lcmm.design.profile(&g);
        let sim = Simulator::new(&g, &profile);
        let config = SimConfig::default().with_prefetch(lcmm.prefetch.clone());
        let report = sim.run(&lcmm.residency, &config);
        let focus = g.block_nodes("inception_c1");
        let fp = Footprint::build(&g, &report, &lcmm.residency, &lcmm.prefetch, &focus);
        // Every conv in the block has a feature and a weight row.
        let convs = focus
            .iter()
            .filter(|&&n| g.node(n).op().has_weights())
            .count();
        assert!(fp.rows.len() >= focus.len() + convs - 2);
        // Rows are time-ordered.
        for w in fp.rows.windows(2) {
            assert!(w[0].from <= w[1].from);
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_events() {
        let g = lcmm_graph::zoo::alexnet();
        let design = lcmm_fpga::AccelDesign::explore(
            &g,
            &lcmm_fpga::Device::vu9p(),
            lcmm_fpga::Precision::Fix16,
        );
        let profile = design.profile(&g);
        let sim = Simulator::new(&g, &profile);
        let report = sim.run(
            &Residency::new(),
            &SimConfig::default().with_record_events(true),
        );
        let json = to_chrome_trace(&g, &report.events);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        let rows = parsed.as_array().expect("array");
        assert_eq!(rows.len(), report.events.len());
        for row in rows {
            assert!(row["dur"].as_f64().expect("dur") >= 0.0);
            assert_eq!(row["ph"], "X");
        }
    }

    #[test]
    fn lcmm_footprint_has_more_on_chip_rows_than_umm() {
        let g = zoo::inception_v4();
        let (umm, lcmm) = compare(&g, &Device::vu9p(), Precision::Fix16);
        let focus = g.block_nodes("inception_c1");

        let umm_sim = Simulator::new(&g, &umm.profile);
        let umm_report = umm_sim.run(&Residency::new(), &SimConfig::default());
        let umm_fp = Footprint::build(
            &g,
            &umm_report,
            &Residency::new(),
            &PrefetchPlan::default(),
            &focus,
        );

        let profile = lcmm.design.profile(&g);
        let sim = Simulator::new(&g, &profile);
        let config = SimConfig::default().with_prefetch(lcmm.prefetch.clone());
        let report = sim.run(&lcmm.residency, &config);
        let lcmm_fp = Footprint::build(&g, &report, &lcmm.residency, &lcmm.prefetch, &focus);

        assert_eq!(umm_fp.on_chip_rows().len(), 0, "UMM keeps nothing on chip");
        assert!(
            !lcmm_fp.on_chip_rows().is_empty(),
            "LCMM must keep something on chip"
        );
        assert!(lcmm_fp.peak_on_chip_bytes() > 0);
    }
}
