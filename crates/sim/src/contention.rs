//! Cross-tenant DRAM-channel contention for multi-model co-plans.
//!
//! Each tenant of a co-plan is planned and simulated against its own
//! device *partition* (a scaled-bank view of the shared DDR system, see
//! `Device::partition`). This module composes those per-tenant runs
//! into a shared-memory-system estimate: when the tenants' bank
//! demands together fit the physical banks, every tenant keeps its
//! dedicated channels and nothing changes; when they oversubscribe the
//! device, each tensor interface's aggregate demand scales the tenants
//! that use it, reusing the same raw-utilisation / oversubscription
//! accounting as [`crate::SimReport::oversubscribed_channels`].

use crate::channel::ChannelKind;
use crate::engine::{SimConfig, Simulator};
use crate::validate::weight_classes;
use lcmm_core::LcmmResult;
use lcmm_graph::Graph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The three tensor interfaces, in a fixed order for deterministic
/// iteration and serialisation.
pub const CHANNEL_KINDS: [ChannelKind; 3] = [
    ChannelKind::InputFeature,
    ChannelKind::Weight,
    ChannelKind::OutputFeature,
];

/// One tenant's steady-state demand on its partition's memory system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantLoad {
    /// Uncontended steady-state latency of one inference, seconds.
    pub steady_latency: f64,
    /// Busy seconds per tensor interface over the simulated run.
    pub channel_busy: HashMap<ChannelKind, f64>,
    /// Wall-clock seconds of the simulated run the busy times are
    /// measured against.
    pub run_seconds: f64,
    /// DDR banks of the tenant's partition view.
    pub banks: usize,
}

impl TenantLoad {
    /// Fraction of the run this tenant keeps interface `kind` busy.
    #[must_use]
    pub fn utilization(&self, kind: ChannelKind) -> f64 {
        if self.run_seconds <= 0.0 {
            return 0.0;
        }
        self.channel_busy.get(&kind).copied().unwrap_or(0.0) / self.run_seconds
    }
}

/// Simulates one tenant's plan in steady state (two warm inferences,
/// as in [`crate::validate::simulate_lcmm`]) and measures its channel
/// demand.
#[must_use]
pub fn tenant_load(graph: &Graph, result: &LcmmResult) -> TenantLoad {
    let profile = result.design.profile(graph);
    let sim = Simulator::new(graph, &profile);
    let config = SimConfig::default()
        .with_inferences(2)
        .with_weight_classes(weight_classes(result))
        .with_prefetch(result.prefetch.clone());
    let report = sim.run(&result.residency, &config);
    TenantLoad {
        steady_latency: report.steady_latency,
        channel_busy: report.channel_busy.clone(),
        run_seconds: report.total_latency,
        banks: result.design.device.ddr.banks,
    }
}

/// Shared-memory-system contention estimate for a set of tenants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionReport {
    /// Whether tenants actually share banks (`false` when the partition
    /// bank counts sum to at most the physical banks — every tenant
    /// then keeps dedicated channels).
    pub shared: bool,
    /// Aggregate normalised demand per tensor interface. Values above
    /// 1.0 mean the interface cannot serve all tenants concurrently.
    pub demand: HashMap<ChannelKind, f64>,
    /// Interfaces whose aggregate demand exceeds capacity (same 1e-9
    /// band as [`crate::SimReport::oversubscribed_channels`]).
    pub oversubscribed_channels: usize,
    /// Per-tenant slowdown factor (≥ 1.0), index-aligned with the
    /// input loads.
    pub slowdown: Vec<f64>,
    /// Per-tenant contended steady latency, seconds.
    pub contended_latency: Vec<f64>,
}

/// Composes per-tenant loads into a shared-device contention estimate.
///
/// Model: tenant `t`'s demand on interface `k` is its utilisation
/// `busy_{t,k} / run_t`, weighted by the fraction of the physical banks
/// its partition claims (`banks_t / total_banks`) — a tenant that was
/// granted half the banks can at most present half the device's
/// bandwidth demand. The interface's aggregate demand is the sum over
/// tenants; a tenant slows down by the worst oversubscribed interface
/// it touches, `max(1, max_k D_k)`.
#[must_use]
pub fn cross_tenant_contention(total_banks: usize, loads: &[TenantLoad]) -> ContentionReport {
    let requested: usize = loads.iter().map(|l| l.banks).sum();
    let shared = requested > total_banks && loads.len() > 1;

    let mut demand = HashMap::new();
    if shared {
        for kind in CHANNEL_KINDS {
            let d: f64 = loads
                .iter()
                .map(|l| l.utilization(kind) * l.banks as f64 / total_banks.max(1) as f64)
                .sum();
            demand.insert(kind, d);
        }
    } else {
        for kind in CHANNEL_KINDS {
            demand.insert(kind, 0.0);
        }
    }

    let oversubscribed_channels = CHANNEL_KINDS
        .iter()
        .filter(|k| demand.get(k).copied().unwrap_or(0.0) > 1.0 + 1e-9)
        .count();

    let slowdown: Vec<f64> = loads
        .iter()
        .map(|l| {
            if !shared {
                return 1.0;
            }
            CHANNEL_KINDS
                .iter()
                .filter(|&&k| l.utilization(k) > 0.0)
                .map(|k| demand.get(k).copied().unwrap_or(0.0))
                .fold(1.0f64, f64::max)
        })
        .collect();

    let contended_latency = loads
        .iter()
        .zip(&slowdown)
        .map(|(l, &s)| l.steady_latency * s)
        .collect();

    ContentionReport {
        shared,
        demand,
        oversubscribed_channels,
        slowdown,
        contended_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(util: f64, banks: usize, steady: f64) -> TenantLoad {
        let mut channel_busy = HashMap::new();
        for kind in CHANNEL_KINDS {
            channel_busy.insert(kind, util);
        }
        TenantLoad {
            steady_latency: steady,
            channel_busy,
            run_seconds: 1.0,
            banks,
        }
    }

    #[test]
    fn dedicated_banks_mean_no_contention() {
        // 2 + 2 banks on a 4-bank device: dedicated channels.
        let loads = vec![load(0.9, 2, 1e-3), load(0.9, 2, 2e-3)];
        let report = cross_tenant_contention(4, &loads);
        assert!(!report.shared);
        assert_eq!(report.oversubscribed_channels, 0);
        assert_eq!(report.slowdown, vec![1.0, 1.0]);
        assert_eq!(report.contended_latency, vec![1e-3, 2e-3]);
    }

    #[test]
    fn oversubscribed_banks_slow_all_users() {
        // 3 + 3 banks requested on a 4-bank device, both near-saturated:
        // aggregate demand 2 × (0.9 × 3/4) = 1.35 per interface.
        let loads = vec![load(0.9, 3, 1e-3), load(0.9, 3, 2e-3)];
        let report = cross_tenant_contention(4, &loads);
        assert!(report.shared);
        assert_eq!(report.oversubscribed_channels, 3);
        for (s, l) in report.slowdown.iter().zip(&loads) {
            assert!((s - 1.35).abs() < 1e-12);
            let _ = l;
        }
        assert!((report.contended_latency[0] - 1.35e-3).abs() < 1e-15);
    }

    #[test]
    fn idle_tenant_is_not_slowed() {
        let mut idle = load(0.0, 3, 1e-3);
        idle.channel_busy.clear();
        let busy = load(1.0, 3, 1e-3);
        let report = cross_tenant_contention(4, &[idle, busy]);
        assert!(report.shared);
        assert_eq!(report.slowdown[0], 1.0, "no demand, no contention");
        assert!(report.slowdown[1] >= 1.0);
    }

    #[test]
    fn light_sharing_stays_at_unity() {
        // Shared banks but low utilisation: demand under 1, no slowdown.
        let loads = vec![load(0.3, 3, 1e-3), load(0.3, 3, 1e-3)];
        let report = cross_tenant_contention(4, &loads);
        assert!(report.shared);
        assert_eq!(report.oversubscribed_channels, 0);
        assert!(report.slowdown.iter().all(|&s| s == 1.0));
    }

    #[test]
    fn single_tenant_never_contends() {
        let loads = vec![load(1.0, 4, 1e-3)];
        let report = cross_tenant_contention(4, &loads);
        assert!(!report.shared);
        assert_eq!(report.slowdown, vec![1.0]);
    }
}
